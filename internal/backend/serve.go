package backend

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"genie/internal/tensor"
	"genie/internal/transport"
)

// Serve answers the Genie wire protocol on one framed connection until
// the peer disconnects or the server drains. It is safe to run one
// Serve per connection concurrently against the same Server.
//
// During Drain, a request already read off the wire is served and its
// reply delivered before the connection closes — in-flight work is
// never dropped mid-RPC.
func (s *Server) Serve(conn *transport.Conn) error {
	if !s.register(conn) {
		return nil // already draining: refuse the connection
	}
	defer s.unregister(conn)
	for {
		t, env, payload, err := conn.RecvEnv()
		if err != nil {
			if transport.IsClosed(err) {
				return nil
			}
			return err
		}
		s.setBusy(conn, true)
		// A non-zero envelope means the caller is tracing: the server's
		// span for this RPC parents under the client-side transport span,
		// stitching one tree across the process boundary.
		span := s.tracer.RemoteSpan(env.Trace, env.Span, "backend."+transport.KindName(t))
		span.SetAttrInt("payload_bytes", int64(len(payload)))
		rt, rp := s.handle(conn, t, payload)
		span.SetAttrInt("reply_bytes", int64(len(rp)))
		span.End()
		err = conn.SendEnv(rt, env, rp)
		last := s.setBusy(conn, false)
		if err != nil {
			if transport.IsClosed(err) {
				return nil
			}
			return err
		}
		if last {
			return nil // drained: reply delivered, now hang up
		}
	}
}

// register tracks a live connection; it reports false when the server
// is draining (the connection must be refused).
func (s *Server) register(conn *transport.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.draining {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[*transport.Conn]bool)
	}
	s.conns[conn] = false
	return true
}

func (s *Server) unregister(conn *transport.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
}

// setBusy flips a connection's in-flight flag; it reports whether the
// server is draining (so the Serve loop can exit after the reply).
func (s *Server) setBusy(conn *transport.Conn, busy bool) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if _, ok := s.conns[conn]; ok {
		s.conns[conn] = busy
	}
	return s.draining
}

// Drain begins a graceful shutdown of the serving side: new
// connections are refused, idle connections close immediately, and
// connections with a request in flight close right after delivering
// their reply. The resident store is untouched. Callers close the
// listener themselves; Listen returns once every Serve loop exits.
func (s *Server) Drain() {
	s.connMu.Lock()
	s.draining = true
	for conn, busy := range s.conns {
		if !busy {
			_ = conn.Close()
		}
	}
	s.connMu.Unlock()
}

func (s *Server) handle(conn *transport.Conn, t transport.MsgType, payload []byte) (transport.MsgType, []byte) {
	fail := func(err error) (transport.MsgType, []byte) {
		return transport.MsgErr, transport.EncodeErr(err)
	}
	switch t {
	case transport.MsgPing:
		return transport.MsgPong, nil
	case transport.MsgHello:
		req, err := transport.DecodeHello(payload)
		if err != nil {
			return fail(err)
		}
		granted := req & s.WireFeatures()
		conn.SetFeatures(granted)
		return transport.MsgHelloOK, transport.EncodeHello(granted)
	case transport.MsgUpload:
		u, err := transport.DecodeUpload(payload)
		if err != nil {
			return fail(err)
		}
		// Dedup remembers the bytes as received (pre-quantization), so
		// the server-side hash always matches what the client hashed.
		if conn.Features()&transport.FeatDedup != 0 {
			s.rememberContent(u.Data)
		}
		ack, err := s.Upload(u.Key, s.maybeQuantize(u.Key, u.Data))
		if err != nil {
			return fail(err)
		}
		return transport.MsgUploadOK, transport.EncodeUploadOK(ack)
	case transport.MsgUploadRef:
		u, err := transport.DecodeUploadRef(payload)
		if err != nil {
			return fail(err)
		}
		data := s.contentFor(u.Hash)
		if data == nil {
			return fail(fmt.Errorf("backend: unknown content hash %x", u.Hash[:8]))
		}
		ack, err := s.Upload(u.Key, s.maybeQuantize(u.Key, data))
		if err != nil {
			return fail(err)
		}
		return transport.MsgUploadOK, transport.EncodeUploadOK(ack)
	case transport.MsgUploadDelta:
		u, err := transport.DecodeUploadDelta(payload)
		if err != nil {
			return fail(err)
		}
		base, err := s.Lookup(u.Key, 0)
		if err != nil {
			return fail(fmt.Errorf("backend: delta base missing: %w", err))
		}
		// A quantization policy rewrites resident bytes, so the client's
		// f32 base no longer exists server-side; the meta check catches
		// that (and any shape change) and forces a full re-upload.
		if base.DType() != u.DType || !base.Shape().Equal(u.Shape) {
			return fail(fmt.Errorf("backend: delta base mismatch: resident %s%v, delta %s%v",
				base.DType(), base.Shape(), u.DType, u.Shape))
		}
		raw, err := transport.ApplyDelta(base.Bytes(), u.Delta)
		if err != nil {
			return fail(err)
		}
		data, err := tensor.FromBytes(u.DType, u.Shape, raw)
		if err != nil {
			return fail(err)
		}
		if transport.ContentHash(data) != u.Hash {
			return fail(fmt.Errorf("backend: delta base mismatch: reconstruction hash differs"))
		}
		if conn.Features()&transport.FeatDedup != 0 {
			s.rememberContent(data)
		}
		ack, err := s.Upload(u.Key, data)
		if err != nil {
			return fail(err)
		}
		return transport.MsgUploadOK, transport.EncodeUploadOK(ack)
	case transport.MsgExec:
		x, err := transport.DecodeExec(payload)
		if err != nil {
			return fail(err)
		}
		// Resolve dedup bindings: hash refs inflate from the content
		// cache; fresh cache-hinted tensors are remembered after a
		// successful run (the client only counts them as server-known
		// once the exec succeeds).
		var cacheable []*tensor.Tensor
		for i := range x.Binds {
			b := &x.Binds[i]
			if b.Hash != ([transport.HashSize]byte{}) {
				data := s.contentFor(b.Hash)
				if data == nil {
					return fail(fmt.Errorf("backend: unknown content hash %x", b.Hash[:8]))
				}
				b.Inline = data
			} else if b.Cache && b.Inline != nil {
				cacheable = append(cacheable, b.Inline)
			}
		}
		ok, err := s.Exec(x)
		if err != nil {
			return fail(err)
		}
		for _, data := range cacheable {
			s.rememberContent(data)
		}
		return transport.MsgExecOK, transport.EncodeExecOK(ok)
	case transport.MsgFetch:
		f, err := transport.DecodeFetch(payload)
		if err != nil {
			return fail(err)
		}
		data, err := s.Lookup(f.Key, f.Epoch)
		if err != nil {
			return fail(err)
		}
		return transport.MsgTensor, transport.EncodeTensorMsg(data)
	case transport.MsgFree:
		f, err := transport.DecodeFetch(payload)
		if err != nil {
			return fail(err)
		}
		s.Free(f.Key)
		return transport.MsgFreeOK, nil
	case transport.MsgCrash:
		s.Crash()
		return transport.MsgCrashOK, nil
	case transport.MsgStats:
		return transport.MsgStatsOK, transport.EncodeStats(s.Stats())
	}
	return fail(fmt.Errorf("backend: unknown message type %d", t))
}

// Listen serves the protocol on a TCP listener until the listener closes.
// Each connection gets its own goroutine.
func (s *Server) Listen(l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		raw, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if tc, ok := raw.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn := transport.NewConn(raw, nil, nil)
			defer conn.Close()
			if err := s.Serve(conn); err != nil {
				log.Printf("backend: connection error: %v", err)
			}
		}()
	}
}
