// Package kvscopedata is genie-lint test fixture data for the KV
// key-discipline analyzer. Its pretend path (genie/internal/pool/...)
// puts it inside the plan-owner scope, so the cross-shard rule is
// silent here and the scope-prefix rule does the talking.
package kvscopedata

import (
	"genie/internal/models"
	"genie/internal/srg"
	"genie/internal/transport"
)

// scopedKeep binds a session-scoped key: the owner doing it right.
func scopedKeep(ex *transport.Exec, scope string) {
	ex.Keep[srg.NodeID(1)] = scope + models.CacheRef(0, "k")
}

// bareKeep drops the scope prefix; two sessions sharing a backend
// would collide on the same key.
func bareKeep(ex *transport.Exec) {
	ex.Keep[srg.NodeID(1)] = models.CacheRef(0, "k") // want "bare models.CacheRef with no session-scope prefix"
}

// bareViaLocal hides the bare ref behind one local binding.
func bareViaLocal(ex *transport.Exec) {
	key := models.CacheRef(1, "v")
	ex.Keep[srg.NodeID(2)] = key // want "bare models.CacheRef with no session-scope prefix"
}

// bindKey is the one-level helper: its key parameter flows into a
// Binding sink, so callers are judged at their call sites.
func bindKey(ex *transport.Exec, key string) {
	ex.Binds = append(ex.Binds, transport.Binding{Ref: "kv", Key: key})
}

// helperBare hands a bare CacheRef to the helper — the case the
// AST-local pass could not see.
func helperBare(ex *transport.Exec) {
	bindKey(ex, models.CacheRef(2, "k")) // want "bare models.CacheRef .* through bindKey"
}

// helperScoped hands a scoped key through the same helper; fine.
func helperScoped(ex *transport.Exec, scope string) {
	bindKey(ex, scope+models.CacheRef(2, "k"))
}

// scopedBinding builds the composite directly with a scoped key.
func scopedBinding(scope string) transport.Binding {
	return transport.Binding{Ref: "kv", Key: scope + models.CacheRef(3, "v")}
}

// bareBinding builds it with a naked ref.
func bareBinding() transport.Binding {
	return transport.Binding{Ref: "kv", Key: models.CacheRef(3, "v")} // want "bare models.CacheRef with no session-scope prefix"
}

// weightKey is not a CacheRef at all; weights are shared, not
// per-session, and kvscope has nothing to say.
func weightKey(ex *transport.Exec) {
	ex.Keep[srg.NodeID(4)] = "weights.wte"
}
