// Command llmserving reruns the paper's §4 experiment for real at laptop
// scale: a GPT model served over a genuine TCP connection under all four
// disaggregation modes. It prints a miniature Table 2 — identical output
// tokens, wildly different traffic and call counts — and then the
// paper-scale simulated Table 2/3 for GPT-J 6B.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"

	"genie"
	"genie/internal/eval"
	"genie/internal/runtime"
)

func main() {
	prompt := []int64{12, 7, 33, 2, 90, 41, 18}
	const steps = 6

	fmt.Println("=== Real execution (TinyGPT over loopback TCP) ===")
	fmt.Printf("%-16s %-22s %12s %12s %8s\n", "mode", "tokens", "prefill[B]", "decode[B]", "calls")

	var reference []int64
	for _, mode := range []genie.Mode{genie.ModeLocal, genie.ModeNaive, genie.ModeDeltaKV, genie.ModeSemAware} {
		srv := genie.NewServer(genie.A100)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go func() { _ = genie.Serve(srv, l) }()

		client, err := genie.Dial(l.Addr().String())
		if err != nil {
			log.Fatal(err)
		}

		rng := rand.New(rand.NewSource(1234)) // same weights every mode
		runner := &genie.LLMRunner{
			Model:    genie.NewGPTModel(rng, genie.TinyGPT),
			EP:       client,
			Counters: client.Conn().Counters(),
		}
		res, err := runner.Generate(mode, prompt, steps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %-22s %12d %12d %8d\n",
			mode, fmt.Sprint(res.Tokens),
			res.Prefill.NetBytes, res.Decode.NetBytes,
			res.Prefill.RPCCalls+res.Decode.RPCCalls)

		if reference == nil {
			reference = res.Tokens
		} else {
			for i := range reference {
				if res.Tokens[i] != reference[i] {
					log.Fatalf("%s diverged from local output!", mode)
				}
			}
		}
		//lint:ignore errcheck example teardown; a failed close cannot affect the finished run
		client.Close()
		//lint:ignore errcheck example teardown; a failed close cannot affect the finished run
		l.Close()
	}
	fmt.Println("all modes produced identical tokens — semantics changed data movement, not results")

	fmt.Println()
	fmt.Println("=== Paper-scale simulation (GPT-J 6B, A100, 25 Gbps, TensorPipe RPC) ===")
	cfg := eval.PaperConfig()
	fmt.Println("Table 2 — prefill (72-token prompt):")
	fmt.Printf("  %-16s %10s %14s %8s\n", "mode", "latency", "net", "util")
	for _, r := range eval.Table2(cfg) {
		fmt.Printf("  %-16s %9.2fs %12.2fMB %7.1f%%\n", r.Prefill.Mode,
			r.Prefill.Latency.Seconds(), float64(r.Prefill.NetBytes)/1e6, r.Prefill.Util()*100)
	}
	fmt.Println("Table 2 — decode (50 tokens):")
	for _, r := range eval.Table2(cfg) {
		fmt.Printf("  %-16s %9.2fs %12.2fMB %7.1f%%\n", r.Decode.Mode,
			r.Decode.Latency.Seconds(), float64(r.Decode.NetBytes)/1e6, r.Decode.Util()*100)
	}
	fmt.Println("Table 3 — decode latency scaling:")
	for _, p := range eval.Table3(cfg, []int{50, 100, 150, 200}) {
		fmt.Printf("  %-16s N=%-4d %8.1fs\n", p.Mode, p.N, p.Latency.Seconds())
	}
	_ = runtime.ModeLocal
}
