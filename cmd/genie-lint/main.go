// Command genie-lint runs Genie's domain-specific static analyzers over
// the module: concurrency, context-propagation, and tensor-semantics
// invariants that go vet cannot see (see internal/analysis).
//
// Usage:
//
//	genie-lint [-json] [-checks ctxflow,errcheck] [packages...]
//
// Patterns follow the go tool ("./...", "./internal/serve"); the
// default is "./...". Exit status: 0 clean, 1 findings, 2 load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"genie/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array (for CI annotation)")
	checks := flag.String("checks", "", "comma-separated check IDs to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: genie-lint [-json] [-checks id,id] [-list] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	opts := analysis.Options{
		JSON:   *jsonOut,
		Out:    os.Stdout,
		Errout: os.Stderr,
	}
	if *checks != "" {
		opts.Checks = strings.Split(*checks, ",")
	}
	os.Exit(analysis.Run(flag.Args(), opts))
}
