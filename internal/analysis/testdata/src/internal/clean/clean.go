// Package clean is genie-lint test fixture data with zero findings
// under every analyzer: the driver must exit 0 here.
package clean

import (
	"context"
	"sync"
)

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) add(delta int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += delta
}

func (c *counter) watch(ctx context.Context, updates <-chan int) error {
	for {
		select {
		case d := <-updates:
			c.add(d)
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
