package lineage

import (
	"math/rand"
	"net"
	"testing"

	"genie/internal/backend"
	"genie/internal/device"
	"genie/internal/lazy"
	"genie/internal/models"
	"genie/internal/nn"
	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/transport"
)

func startBackend(t *testing.T) (*transport.Client, *backend.Server) {
	t.Helper()
	srv := backend.NewServer(device.A100)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() { _ = srv.Listen(l) }()
	conn, err := transport.Dial(l.Addr().String(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return transport.NewClient(conn), srv
}

// buildChain captures y = relu(w ∘ x) keeping y resident, producing a
// chain of dependent objects across n steps: step i consumes step i-1's
// output.
func chainStep(t *testing.T, m *Manager, ep string, stepKey, prevKey string, first *tensor.Tensor) {
	t.Helper()
	b := lazy.NewBuilder("chain")
	var x lazy.Value
	if prevKey == "" {
		x = b.Input("x", first)
	} else {
		x = b.Input("prev", tensor.New(tensor.F32, first.Shape()...))
	}
	y := b.ReLU(b.Scale(x, 2))
	ex := &transport.Exec{
		Graph: b.Graph(),
		Keep:  map[srg.NodeID]string{y.ID(): stepKey},
	}
	if prevKey == "" {
		ex.Binds = []transport.Binding{{Ref: "x", Inline: first}}
	} else {
		ex.Binds = []transport.Binding{{Ref: "prev", Key: prevKey}}
	}
	if _, err := m.ExecTracked(ep, ex); err != nil {
		t.Fatal(err)
	}
}

func TestUploadTrackedAndRecoverAfterCrash(t *testing.T) {
	client, srv := startBackend(t)
	m := NewManager()
	m.RegisterEndpoint("gpu0", client)

	w := tensor.FromF32(tensor.Shape{2}, []float32{1, 2})
	if err := m.UploadTracked("gpu0", "w", w); err != nil {
		t.Fatal(err)
	}
	srv.Crash()

	lost, err := m.DetectLost("gpu0")
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 1 || lost[0] != "w" {
		t.Fatalf("lost = %v", lost)
	}
	if err := m.Recover(lost, "gpu0"); err != nil {
		t.Fatal(err)
	}
	epoch, _ := m.EpochOf("w")
	got, err := client.Fetch("w", epoch)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got, w, 0, 0) {
		t.Error("recovered weight differs")
	}
}

func TestChainReplayInDependencyOrder(t *testing.T) {
	client, srv := startBackend(t)
	m := NewManager()
	m.RegisterEndpoint("gpu0", client)

	seed := tensor.FromF32(tensor.Shape{2}, []float32{1, -3})
	chainStep(t, m, "gpu0", "s1", "", seed)
	chainStep(t, m, "gpu0", "s2", "s1", seed)
	chainStep(t, m, "gpu0", "s3", "s2", seed)

	// Verify pre-crash value: s3 = relu(2*relu(2*relu(2*x))) = [8, 0].
	epoch, _ := m.EpochOf("s3")
	pre, err := client.Fetch("s3", epoch)
	if err != nil {
		t.Fatal(err)
	}

	srv.Crash()
	n, err := m.RecoverFrom("gpu0", "gpu0")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("recovered %d objects, want 3", n)
	}
	epoch, _ = m.EpochOf("s3")
	post, err := client.Fetch("s3", epoch)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(pre, post, 0, 0) {
		t.Errorf("replayed chain differs: %v vs %v", pre.F32(), post.F32())
	}
}

func TestSelectiveReplayOnlyLostChains(t *testing.T) {
	// Two independent chains on two servers; crash one. Only its chain
	// replays, and the healthy server sees no extra exec calls.
	c0, s0 := startBackend(t)
	c1, s1 := startBackend(t)
	m := NewManager()
	m.RegisterEndpoint("gpu0", c0)
	m.RegisterEndpoint("gpu1", c1)

	seed := tensor.FromF32(tensor.Shape{2}, []float32{1, 1})
	chainStep(t, m, "gpu0", "a1", "", seed)
	chainStep(t, m, "gpu1", "b1", "", seed)
	healthyCalls := s1.Stats().ExecCalls

	s0.Crash()
	n, err := m.RecoverFrom("gpu0", "gpu0")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("recovered %d, want 1", n)
	}
	if got := s1.Stats().ExecCalls; got != healthyCalls {
		t.Errorf("healthy server executed %d extra calls", got-healthyCalls)
	}
	_ = s1
}

func TestRecoverOntoDifferentEndpoint(t *testing.T) {
	// Rebinding to new resources (§3.5): recover a crashed server's
	// state onto a different machine.
	c0, s0 := startBackend(t)
	c1, _ := startBackend(t)
	m := NewManager()
	m.RegisterEndpoint("gpu0", c0)
	m.RegisterEndpoint("gpu1", c1)

	seed := tensor.FromF32(tensor.Shape{2}, []float32{2, 5})
	chainStep(t, m, "gpu0", "s1", "", seed)
	chainStep(t, m, "gpu0", "s2", "s1", seed)

	s0.Crash()
	if _, err := m.RecoverFrom("gpu0", "gpu1"); err != nil {
		t.Fatal(err)
	}
	epoch, _ := m.EpochOf("s2")
	got, err := c1.Fetch("s2", epoch)
	if err != nil {
		t.Fatalf("s2 should now live on gpu1: %v", err)
	}
	want := []float32{8, 20}
	for i, v := range got.F32() {
		if v != want[i] {
			t.Errorf("recovered s2 = %v", got.F32())
			break
		}
	}
}

func TestGroupedReplaySingleExec(t *testing.T) {
	// Two objects kept by ONE execution must replay with one exec call.
	client, srv := startBackend(t)
	m := NewManager()
	m.RegisterEndpoint("gpu0", client)

	b := lazy.NewBuilder("pair")
	x := b.Input("x", tensor.FromF32(tensor.Shape{2}, []float32{1, 2}))
	a := b.Scale(x, 2)
	c := b.Scale(x, 3)
	xt, _ := b.InputData("x")
	ex := &transport.Exec{
		Graph: b.Graph(),
		Binds: []transport.Binding{{Ref: "x", Inline: xt}},
		Keep:  map[srg.NodeID]string{a.ID(): "pa", c.ID(): "pc"},
	}
	if _, err := m.ExecTracked("gpu0", ex); err != nil {
		t.Fatal(err)
	}
	srv.Crash()
	srv.ResetAccounting()
	if _, err := m.RecoverFrom("gpu0", "gpu0"); err != nil {
		t.Fatal(err)
	}
	if calls := srv.Stats().ExecCalls; calls != 1 {
		t.Errorf("replay used %d exec calls, want 1", calls)
	}
}

func TestDecodeLoopRecovery(t *testing.T) {
	// The §3.5 headline: recover a decode loop's KV state mid-stream and
	// continue generating the same tokens (lineage spans phases).
	client, srv := startBackend(t)
	m := NewManager()
	m.RegisterEndpoint("gpu0", client)

	rng := rand.New(rand.NewSource(77))
	gpt := models.NewGPT(rng, models.TinyGPT)
	prompt := []int64{3, 14, 15, 9, 26}

	// Install weights tracked.
	pb, _ := gpt.BuildPrefill(prompt)
	for _, n := range pb.Graph().Nodes() {
		if n.Op == "param" {
			data, _ := pb.ParamData(n.Ref)
			if err := m.UploadTracked("gpu0", n.Ref, data); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Tracked prefill keeping caches.
	runStep := func(b *lazy.Builder, out models.LLMOutputs) int64 {
		t.Helper()
		ex := &transport.Exec{Graph: b.Graph(), Keep: map[srg.NodeID]string{}}
		for _, n := range b.Graph().Nodes() {
			if n.Op == "input" {
				if n.Residency == srg.ResidencyStatefulKVCache {
					ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Key: n.Ref})
					continue
				}
				data, _ := b.InputData(n.Ref)
				ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Inline: data})
			}
		}
		for i := range out.CacheK {
			ex.Keep[out.CacheK[i]] = models.CacheRef(i, "k")
			ex.Keep[out.CacheV[i]] = models.CacheRef(i, "v")
		}
		ex.Want = []srg.NodeID{out.NextToken}
		ok, err := m.ExecTracked("gpu0", ex)
		if err != nil {
			t.Fatal(err)
		}
		return ok.Results[out.NextToken].I64()[0]
	}

	b, out := gpt.BuildPrefill(prompt)
	next := runStep(b, out)
	hist := len(prompt)

	var tokens []int64
	for s := 0; s < 2; s++ {
		tokens = append(tokens, next)
		db, dout := gpt.BuildDecodeStep(next, hist, hist, emptyCaches(gpt))
		next = runStep(db, dout)
		hist++
	}

	// Crash mid-loop, recover, continue: tokens must match an untouched
	// run.
	srv.Crash()
	if _, err := m.RecoverFrom("gpu0", "gpu0"); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		tokens = append(tokens, next)
		db, dout := gpt.BuildDecodeStep(next, hist, hist, emptyCaches(gpt))
		next = runStep(db, dout)
		hist++
	}

	// Reference: same model, no crash.
	c2, _ := startBackend(t)
	m2 := NewManager()
	m2.RegisterEndpoint("gpu0", c2)
	rng2 := rand.New(rand.NewSource(77))
	gpt2 := models.NewGPT(rng2, models.TinyGPT)
	pb2, _ := gpt2.BuildPrefill(prompt)
	for _, n := range pb2.Graph().Nodes() {
		if n.Op == "param" {
			data, _ := pb2.ParamData(n.Ref)
			if err := m2.UploadTracked("gpu0", n.Ref, data); err != nil {
				t.Fatal(err)
			}
		}
	}
	runStep2 := func(b *lazy.Builder, out models.LLMOutputs) int64 {
		t.Helper()
		ex := &transport.Exec{Graph: b.Graph(), Keep: map[srg.NodeID]string{}}
		for _, n := range b.Graph().Nodes() {
			if n.Op == "input" {
				if n.Residency == srg.ResidencyStatefulKVCache {
					ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Key: n.Ref})
					continue
				}
				data, _ := b.InputData(n.Ref)
				ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Inline: data})
			}
		}
		for i := range out.CacheK {
			ex.Keep[out.CacheK[i]] = models.CacheRef(i, "k")
			ex.Keep[out.CacheV[i]] = models.CacheRef(i, "v")
		}
		ex.Want = []srg.NodeID{out.NextToken}
		ok, err := m2.ExecTracked("gpu0", ex)
		if err != nil {
			t.Fatal(err)
		}
		return ok.Results[out.NextToken].I64()[0]
	}
	b2, out2 := gpt2.BuildPrefill(prompt)
	next2 := runStep2(b2, out2)
	hist2 := len(prompt)
	var want []int64
	for s := 0; s < 4; s++ {
		want = append(want, next2)
		db, dout := gpt2.BuildDecodeStep(next2, hist2, hist2, emptyCaches(gpt2))
		next2 = runStep2(db, dout)
		hist2++
	}

	for i := range want {
		if tokens[i] != want[i] {
			t.Fatalf("post-recovery tokens diverge at %d: %v vs %v", i, tokens, want)
		}
	}
}

func emptyCaches(m *models.GPT) []*nn.KVCache {
	caches := make([]*nn.KVCache, m.Cfg.Layers)
	for i := range caches {
		caches[i] = &nn.KVCache{}
	}
	return caches
}

func TestRecoverUnknownKeyFails(t *testing.T) {
	client, _ := startBackend(t)
	m := NewManager()
	m.RegisterEndpoint("gpu0", client)
	if err := m.Recover([]string{"ghost"}, "gpu0"); err == nil {
		t.Error("recovering untracked object should fail")
	}
	if err := m.Recover(nil, "nowhere"); err == nil {
		t.Error("unknown endpoint should fail")
	}
}

func TestDetectLostNothingWhenHealthy(t *testing.T) {
	client, _ := startBackend(t)
	m := NewManager()
	m.RegisterEndpoint("gpu0", client)
	if err := m.UploadTracked("gpu0", "w", tensor.New(tensor.F32, 1)); err != nil {
		t.Fatal(err)
	}
	lost, err := m.DetectLost("gpu0")
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 0 {
		t.Errorf("healthy server lost %v", lost)
	}
}

func TestCheckpointTruncatesReplayChain(t *testing.T) {
	client, srv := startBackend(t)
	m := NewManager()
	m.RegisterEndpoint("gpu0", client)

	seed := tensor.FromF32(tensor.Shape{2}, []float32{1, 1})
	chainStep(t, m, "gpu0", "s1", "", seed)
	chainStep(t, m, "gpu0", "s2", "s1", seed)
	chainStep(t, m, "gpu0", "s3", "s2", seed)
	if d := m.ChainDepth("s3"); d != 3 {
		t.Fatalf("chain depth %d, want 3", d)
	}

	if err := m.Checkpoint("s2"); err != nil {
		t.Fatal(err)
	}
	// s3's chain now cuts at the checkpointed s2.
	if d := m.ChainDepth("s3"); d != 1 {
		t.Errorf("chain depth after checkpoint %d, want 1", d)
	}

	// Crash, then recover just the tip: s2 must re-upload its snapshot
	// (no recomputation) and s3 replay one step; values stay correct
	// (s3 = 2*relu(2*relu(2*x)) = 8).
	srv.Crash()
	srv.ResetAccounting()
	if err := m.Recover([]string{"s2", "s3"}, "gpu0"); err != nil {
		t.Fatal(err)
	}
	if calls := srv.Stats().ExecCalls; calls != 1 {
		t.Errorf("recovery used %d exec calls, want 1 (s3 only; s2 re-uploads)", calls)
	}
	epoch, _ := m.EpochOf("s3")
	got, err := client.Fetch("s3", epoch)
	if err != nil {
		t.Fatal(err)
	}
	if got.F32()[0] != 8 {
		t.Errorf("recovered s3 = %v, want 8", got.F32()[0])
	}
}

func TestCheckpointErrors(t *testing.T) {
	client, _ := startBackend(t)
	m := NewManager()
	m.RegisterEndpoint("gpu0", client)
	if err := m.Checkpoint("ghost"); err == nil {
		t.Error("checkpoint of untracked key should fail")
	}
	if m.ChainDepth("ghost") != 0 {
		t.Error("untracked chain depth should be 0")
	}
}
