package transport

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"genie/internal/obs"
)

// TestCallCtxHungPeer is the regression test for the forever-block bug:
// a peer that accepts the request but never replies must not wedge the
// caller. On the old Conn (no deadlines) this test hangs; with ctx
// deadlines plumbed into the socket it returns within the 250ms budget.
// The whole test must finish in well under 2 seconds.
func TestCallCtxHungPeer(t *testing.T) {
	client, server := Pipe(nil, nil)
	defer client.Close()
	defer server.Close()

	// Hung peer: drain the request so the send succeeds, then go silent.
	go func() {
		_, _, _ = server.Recv()
		// Never respond; hold the conn open until the test ends.
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := client.CallCtx(ctx, MsgPing, nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call against a hung peer returned nil error")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("hung-peer call took %v, want < 2s", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if Classify(err) != ClassRetryable {
		t.Fatalf("Classify(%v) = %v, want retryable", err, Classify(err))
	}
	if !client.Dead() {
		t.Fatal("timed-out conn not poisoned; a late reply would desync the next call")
	}
}

// TestCallCtxCancelMidCall: cancellation (not just deadline expiry)
// must also unblock an in-flight read.
func TestCallCtxCancelMidCall(t *testing.T) {
	client, server := Pipe(nil, nil)
	defer client.Close()
	defer server.Close()

	go func() {
		_, _, _ = server.Recv() // accept, never reply
	}()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := client.CallCtx(ctx, MsgPing, nil)
	if err == nil {
		t.Fatal("cancelled call returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled call took %v", elapsed)
	}
	if Classify(err) != ClassFatal {
		t.Fatalf("Classify(cancel) = %v, want fatal", Classify(err))
	}
}

// TestCallCtxNoDeadlinePassesThrough: a plain background ctx must not
// interfere with a normal round trip.
func TestCallCtxNoDeadlinePassesThrough(t *testing.T) {
	client, server := Pipe(nil, nil)
	defer client.Close()
	defer server.Close()
	go func() {
		mt, _, err := server.Recv()
		if err != nil || mt != MsgPing {
			return
		}
		_ = server.Send(MsgPong, nil)
	}()
	rt, _, err := client.CallCtx(context.Background(), MsgPing, nil)
	if err != nil || rt != MsgPong {
		t.Fatalf("CallCtx = %v, %v; want MsgPong", rt, err)
	}
	if client.Dead() {
		t.Fatal("healthy call poisoned the conn")
	}
}

// TestCancelAfterSuccessDoesNotPoisonConn is the regression test for
// the stale-watcher race: a call completes, the caller cancels its ctx
// right after (the universal `defer cancel()` shape), and the deadline
// watcher — possibly not yet scheduled, seeing both its channels ready
// — must NOT plant a poison deadline on the conn. On the racy code a
// few hundred call/cancel rounds reliably fail a later, innocent call
// with a spurious i/o timeout and kill the conn.
func TestCancelAfterSuccessDoesNotPoisonConn(t *testing.T) {
	client, server := Pipe(nil, nil)
	defer client.Close()
	defer server.Close()
	go func() {
		for {
			mt, _, err := server.Recv()
			if err != nil || mt != MsgPing {
				return
			}
			if err := server.Send(MsgPong, nil); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 500; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		rt, _, err := client.CallCtx(ctx, MsgPing, nil)
		cancel() // fires the previous watcher's done while the next call runs
		if err != nil || rt != MsgPong {
			t.Fatalf("call %d: rt=%v err=%v (stale watcher poisoned the conn?)", i, rt, err)
		}
	}
	if client.Dead() {
		t.Fatal("conn poisoned by call/cancel churn")
	}
}

// TestCorruptFrameClosesConn: a frame with an oversize length prefix
// must surface as a typed FrameError and poison the conn.
func TestCorruptFrameClosesConn(t *testing.T) {
	a, b := net.Pipe()
	conn := NewConn(a, nil, nil)
	defer conn.Close()
	go func() {
		// 4 GiB-ish length prefix followed by a type byte: malformed.
		_, _ = b.Write([]byte{0xff, 0xff, 0xff, 0xff, byte(MsgPong)})
	}()
	_, _, err := conn.Recv()
	if err == nil {
		t.Fatal("oversize frame decoded without error")
	}
	if !IsFrameError(err) {
		t.Fatalf("err = %T %v, want *FrameError", err, err)
	}
	if !conn.Dead() {
		t.Fatal("conn survived a malformed frame")
	}
	if Classify(err) != ClassFatal {
		t.Fatalf("Classify(frame error) = %v, want fatal", Classify(err))
	}
}

// TestFailedCallPoisonsConn: after a send/recv failure the conn reports
// Dead so pools and retriers know to redial rather than reuse it.
func TestFailedCallPoisonsConn(t *testing.T) {
	client, server := Pipe(nil, nil)
	defer client.Close()
	// Peer disappears: calls fail with a closed-conn error.
	server.Close()
	if _, _, err := client.Call(MsgPing, nil); err == nil {
		t.Fatal("call against closed peer succeeded")
	}
	if !client.Dead() {
		t.Fatal("failed call left the conn marked live")
	}
}

// TestRemoteErrorLeavesConnHealthy: an application-level MsgErr reply
// is a successful round trip; the conn must stay usable.
func TestRemoteErrorLeavesConnHealthy(t *testing.T) {
	client, server := Pipe(nil, nil)
	defer client.Close()
	defer server.Close()
	go func() {
		for {
			mt, _, err := server.Recv()
			if err != nil {
				return
			}
			if mt == MsgPing {
				_ = server.Send(MsgPong, nil)
			} else {
				_ = server.Send(MsgErr, EncodeErr(errors.New("nope")))
			}
		}
	}()
	if _, _, err := client.Call(MsgStats, nil); !IsRemote(err) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if client.Dead() {
		t.Fatal("RemoteError poisoned the conn")
	}
	if rt, _, err := client.Call(MsgPing, nil); err != nil || rt != MsgPong {
		t.Fatalf("conn unusable after RemoteError: %v, %v", rt, err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want ErrClass
	}{
		{nil, ClassOK},
		{io.EOF, ClassRetryable},
		{context.DeadlineExceeded, ClassRetryable},
		{net.ErrClosed, ClassRetryable},
		{context.Canceled, ClassFatal},
		{frameErrorf("transport: bad"), ClassFatal},
		{&RemoteError{Msg: "backend: no such key"}, ClassRemote},
		{errors.New("something else"), ClassFatal},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestIsStateLoss(t *testing.T) {
	if !IsStateLoss(&RemoteError{Msg: "backend: stale handle k (epoch 1, store at 2)"}) {
		t.Error("stale handle not classed as state loss")
	}
	if !IsStateLoss(&RemoteError{Msg: "backend: no resident object w0"}) {
		t.Error("missing object not classed as state loss")
	}
	if IsStateLoss(&RemoteError{Msg: "backend: unsupported op"}) {
		t.Error("generic remote error classed as state loss")
	}
	if IsStateLoss(io.EOF) {
		t.Error("conn error classed as state loss")
	}
}

// TestRetrierRetriesTransient: transient failures are retried with
// backoff until success, within the attempt budget.
func TestRetrierRetriesTransient(t *testing.T) {
	var calls, retries int
	r := &Retrier{
		Max:  5,
		Base: time.Millisecond,
		Cap:  4 * time.Millisecond,
		OnRetry: func(attempt int, delay time.Duration, err error) {
			retries++
			if delay <= 0 {
				t.Errorf("retry %d got non-positive delay %v", attempt, delay)
			}
		},
	}
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return io.EOF // retryable
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v", err)
	}
	if calls != 3 || retries != 2 {
		t.Fatalf("calls = %d, retries = %d; want 3, 2", calls, retries)
	}
}

// TestRetrierStopsOnFatal: non-retryable errors return immediately.
func TestRetrierStopsOnFatal(t *testing.T) {
	var calls int
	r := &Retrier{Max: 5, Base: time.Millisecond}
	fatal := frameErrorf("transport: bad frame")
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return fatal
	})
	if !IsFrameError(err) || calls != 1 {
		t.Fatalf("err = %v after %d calls; want the frame error after 1", err, calls)
	}
}

// TestRetrierExhaustsBudget: the last error surfaces once attempts run out.
func TestRetrierExhaustsBudget(t *testing.T) {
	var calls int
	r := &Retrier{Max: 3, Base: time.Millisecond, Cap: 2 * time.Millisecond}
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return io.EOF
	})
	if !errors.Is(err, io.EOF) || calls != 3 {
		t.Fatalf("err = %v after %d calls; want EOF after 3", err, calls)
	}
}

// TestRetrierHonorsCtx: a done context stops the retry loop during
// backoff, returning the operation's error rather than spinning.
func TestRetrierHonorsCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls int
	r := &Retrier{Max: 100, Base: 50 * time.Millisecond, Cap: 50 * time.Millisecond}
	start := time.Now()
	err := r.Do(ctx, func(context.Context) error {
		calls++
		if calls == 1 {
			cancel()
		}
		return io.EOF
	})
	if err == nil {
		t.Fatal("Do = nil under cancelled ctx")
	}
	if calls != 1 {
		t.Fatalf("op ran %d times after cancel, want 1", calls)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled retry loop ran %v", elapsed)
	}
}

// TestRetrierDeterministicBackoff: same seed, same jitter sequence —
// the property chaos experiments rely on for reproducibility.
func TestRetrierDeterministicBackoff(t *testing.T) {
	seq := func() []time.Duration {
		r := &Retrier{Max: 4, Base: 10 * time.Millisecond, Cap: time.Second, Seed: 42}
		var ds []time.Duration
		for i := 1; i <= 3; i++ {
			ds = append(ds, r.backoff(i))
		}
		return ds
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if !(a[0] < a[1] && a[1] < a[2]) {
		t.Fatalf("backoff not growing: %v", a)
	}
}

// TestBreakerLifecycle walks closed → open → half-open → closed with a
// fake clock and checks the obs series along the way.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	reg := obs.NewRegistry()
	b := NewBreaker(BreakerConfig{
		Threshold: 2,
		Cooldown:  time.Second,
		Now:       func() time.Time { return now },
	})
	b.Instrument(reg, "b0")

	if b.State() != BreakerClosed {
		t.Fatal("new breaker not closed")
	}
	// Two availability failures trip it.
	for i := 0; i < 2; i++ {
		if _, err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected call %d: %v", i, err)
		}
		b.Record(io.EOF)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", b.State())
	}
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted a call: %v", err)
	}
	if ra := b.RetryAfter(); ra != time.Second {
		t.Fatalf("RetryAfter = %v, want 1s", ra)
	}

	// Cooldown elapses: one probe is admitted, concurrent calls rejected.
	now = now.Add(1100 * time.Millisecond)
	probe, err := b.Allow()
	if err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if probe == nil {
		t.Fatal("half-open admission carried no probe identity")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v", b.State())
	}
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("second call admitted during probe")
	}
	// Probe fails → straight back to open.
	probe.Conclude(io.EOF)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}

	// Next probe succeeds → closed, streak cleared.
	now = now.Add(1100 * time.Millisecond)
	probe, err = b.Allow()
	if err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	probe.Conclude(nil)
	if b.State() != BreakerClosed {
		t.Fatalf("state after good probe = %v, want closed", b.State())
	}
	if probe, err := b.Allow(); err != nil || probe != nil {
		t.Fatal("closed breaker rejecting again (or handing out probes)")
	}
	b.Record(nil)

	if v := reg.Counter("genie_breaker_rejected_total", "", "endpoint", "b0").Value(); v != 2 {
		t.Errorf("rejected counter = %d, want 2", v)
	}
	if v := reg.Counter("genie_breaker_transitions_total", "", "endpoint", "b0", "to", "open").Value(); v != 2 {
		t.Errorf("open transitions = %d, want 2", v)
	}
	if v := reg.Gauge("genie_breaker_state", "", "endpoint", "b0").Value(); v != int64(BreakerClosed) {
		t.Errorf("state gauge = %d, want closed", v)
	}
}

// TestBreakerIgnoresRemoteErrors: an application error proves the
// server is alive; it must not trip the breaker and it resets the
// streak a real failure started.
func TestBreakerIgnoresRemoteErrors(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 2})
	_, _ = b.Allow()
	b.Record(io.EOF)
	_, _ = b.Allow()
	b.Record(&RemoteError{Msg: "backend: no such key"})
	_, _ = b.Allow()
	b.Record(io.EOF)
	if b.State() != BreakerClosed {
		t.Fatalf("breaker tripped by interleaved remote errors: %v", b.State())
	}
}

// TestBreakerProbeAttribution is the regression test for the half-open
// probe race: Record used to attribute whatever outcome arrived first
// while half-open to the probe. A late Record from a call admitted
// before the trip could then conclude a probe it never held — freeing
// the probe slot so additional callers were admitted as "probes" — and
// a stray late success could close an open breaker with no probe run
// at all. Record is now probe-neutral; only Probe.Conclude settles one.
func TestBreakerProbeAttribution(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(BreakerConfig{
		Threshold: 2,
		Cooldown:  time.Second,
		Now:       func() time.Time { return now },
	})

	// Two calls are admitted while closed; their outcomes will arrive
	// late. Two more trip the breaker.
	for i := 0; i < 4; i++ {
		if _, err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected call %d: %v", i, err)
		}
	}
	b.Record(io.EOF)
	b.Record(io.EOF)
	if b.State() != BreakerOpen {
		t.Fatal("setup: breaker should be open")
	}

	// Late success from a pre-trip call arrives while open: must NOT
	// close the breaker (the old code did).
	b.Record(nil)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("late success closed an open breaker: state = %v", st)
	}

	// Cooldown elapses; one probe claims the slot.
	now = now.Add(1100 * time.Millisecond)
	probe, err := b.Allow()
	if err != nil || probe == nil {
		t.Fatalf("probe not admitted: probe=%v err=%v", probe, err)
	}

	// Late failure from the other pre-trip call arrives while half-open:
	// must NOT conclude the probe or free its slot.
	b.Record(io.EOF)
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("late failure concluded the probe: state = %v", st)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("probe slot freed by a non-probe Record; second probe admitted")
	}

	// Only the identity token settles the probe.
	probe.Conclude(nil)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after probe conclude = %v, want closed", st)
	}
	// Stale double-conclude is a no-op.
	probe.Conclude(io.EOF)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("stale conclude moved the breaker: state = %v", st)
	}
}

// TestBreakerSingleProbeUnderRace hammers a cooled-down breaker from
// many goroutines (run under -race): exactly one caller may hold probe
// identity per cooldown window, no matter how the dequeues interleave
// with late Records from earlier calls.
func TestBreakerSingleProbeUnderRace(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Millisecond})
	if _, err := b.Allow(); err != nil {
		t.Fatal("closed breaker rejected")
	}
	b.Record(io.EOF)
	if b.State() != BreakerOpen {
		t.Fatal("setup: breaker should be open")
	}
	time.Sleep(2 * time.Millisecond)

	const callers = 32
	var wg sync.WaitGroup
	var probes atomic.Int64
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			probe, err := b.Allow()
			if probe != nil {
				probes.Add(1)
			}
			if err != nil {
				// Rejected caller; its late Record from a previous life
				// must stay probe-neutral.
				b.Record(io.EOF)
				b.Record(nil)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	if n := probes.Load(); n != 1 {
		t.Fatalf("%d callers claimed probe identity, want exactly 1", n)
	}
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state = %v with the probe still unconcluded, want half-open", st)
	}
}
