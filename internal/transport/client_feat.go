package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"genie/internal/tensor"
)

// Client-side wire feature machinery (DESIGN.md §11): negotiation,
// the sent-hash set behind upload dedup, previous-version tracking for
// delta uploads, and the exec-binding rewrite that turns repeated
// inline weights into 32-byte hash refs.

// prevVersion is the last payload uploaded under a key, kept so the
// next same-shape upload can travel as a delta.
type prevVersion struct {
	meta tensor.Meta
	data []byte
}

const (
	// maxPrevBytes bounds delta-base memory; past it the tracking
	// resets (deltas degrade to full uploads, correctness unaffected).
	maxPrevBytes = 64 << 20
	// maxHashCache bounds the pointer→hash memo.
	maxHashCache = 4096
)

// Negotiate requests wire features from the server and installs the
// granted subset on the connection. Returns the granted mask. Calling
// it on a legacy server fails with an unknown-message error and leaves
// the conn unusable (the server closes it); negotiate on fresh conns.
func (c *Client) Negotiate(ctx context.Context, want uint32) (uint32, error) {
	t, p, err := c.conn.CallCtx(ctx, MsgHello, EncodeHello(want))
	if err != nil {
		return 0, err
	}
	if t != MsgHelloOK {
		return 0, fmt.Errorf("transport: hello got %d", t)
	}
	granted, err := DecodeHello(p)
	if err != nil {
		return 0, err
	}
	c.conn.SetFeatures(granted)
	c.flushDedup()
	return granted, nil
}

// isUnknownContent classifies the server's "I don't have those bytes"
// rejection, which is recoverable by re-sending in full; any other
// error propagates.
func isUnknownContent(err error) bool {
	var re *RemoteError
	if !errors.As(err, &re) {
		return false
	}
	return strings.Contains(re.Msg, "unknown content hash") ||
		strings.Contains(re.Msg, "delta base")
}

// hashOf memoizes ContentHash by tensor identity. Weights are immutable
// once built (the tensormut analyzer enforces this outside kernel
// packages), so pointer identity is a sound cache key; the memo is
// size-capped for callers that hash short-lived tensors.
func (c *Client) hashOf(t *tensor.Tensor) [HashSize]byte {
	c.dmu.Lock()
	if h, ok := c.hashes[t]; ok {
		c.dmu.Unlock()
		return h
	}
	c.dmu.Unlock()
	h := ContentHash(t)
	c.dmu.Lock()
	if c.hashes == nil || len(c.hashes) >= maxHashCache {
		c.hashes = make(map[*tensor.Tensor][HashSize]byte)
	}
	c.hashes[t] = h
	c.dmu.Unlock()
	return h
}

func (c *Client) hasSent(h [HashSize]byte) bool {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	_, ok := c.sent[h]
	return ok
}

// flushDedup forgets everything the client believes the server holds.
func (c *Client) flushDedup() {
	c.dmu.Lock()
	c.sent = nil
	c.prev = nil
	c.prevBytes = 0
	c.dmu.Unlock()
}

// noteEpoch reconciles the server's store epoch: a change means a
// crash wiped resident state, so every sent hash and delta base is
// gone and the dedup state must restart from nothing.
func (c *Client) noteEpochLocked(epoch uint32) {
	if epoch != c.epoch {
		c.epoch = epoch
		c.sent = nil
		c.prev = nil
		c.prevBytes = 0
	}
}

// noteUpload records a successful upload: the server now holds these
// bytes (dedup) and this is the key's delta base.
func (c *Client) noteUpload(key string, data *tensor.Tensor, h [HashSize]byte, ack *UploadOK) {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	c.noteEpochLocked(ack.Epoch)
	if c.sent == nil {
		c.sent = make(map[[HashSize]byte]struct{})
	}
	c.sent[h] = struct{}{}
	// Delta bases are copies (the caller may mutate or release the
	// tensor later) and quantized tensors are excluded — their scale
	// section makes byte deltas meaningless.
	if data.DType() == tensor.I8 {
		return
	}
	if old, ok := c.prev[key]; ok {
		c.prevBytes -= int64(len(old.data))
	}
	if c.prevBytes+int64(data.NumBytes()) > maxPrevBytes {
		c.prev = nil
		c.prevBytes = 0
	}
	if c.prev == nil {
		c.prev = make(map[string]prevVersion)
	}
	cp := make([]byte, data.NumBytes())
	copy(cp, data.Bytes())
	c.prev[key] = prevVersion{meta: tensor.MetaOf(data), data: cp}
	c.prevBytes += int64(len(cp))
}

// noteExec records a successful exec that carried cache-hinted inline
// tensors (the server hashed and remembered them) and reconciles the
// epoch.
func (c *Client) noteExec(epoch uint32, sent [][HashSize]byte) {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	c.noteEpochLocked(epoch)
	if len(sent) == 0 {
		return
	}
	if c.sent == nil {
		c.sent = make(map[[HashSize]byte]struct{})
	}
	for _, h := range sent {
		c.sent[h] = struct{}{}
	}
}

// prevFor returns the delta base for key when one exists with a
// matching descriptor.
func (c *Client) prevFor(key string, m tensor.Meta) ([]byte, bool) {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	pv, ok := c.prev[key]
	if !ok || !pv.meta.Equal(m) {
		return nil, false
	}
	return pv.data, true
}

// rewriteBinds prepares an Exec's bindings for the negotiated feature
// set without mutating the caller's struct. With FeatDedup granted,
// cache-hinted inline tensors the server has already seen become
// 32-byte hash refs and fresh ones stay inline (kind 3, so the server
// remembers them); without it every Cache hint is stripped so the
// encoding stays byte-identical to legacy. pending lists the hashes
// that will be server-known once this exec succeeds.
func (c *Client) rewriteBinds(x *Exec, feats uint32) (_ *Exec, pending [][HashSize]byte) {
	needs := false
	for i := range x.Binds {
		if x.Binds[i].Cache {
			needs = true
			break
		}
	}
	if !needs {
		return x, nil
	}
	binds := make([]Binding, len(x.Binds))
	copy(binds, x.Binds)
	for i := range binds {
		if !binds[i].Cache || binds[i].Inline == nil {
			binds[i].Cache = false
			continue
		}
		if feats&FeatDedup == 0 {
			binds[i].Cache = false
			continue
		}
		h := c.hashOf(binds[i].Inline)
		if c.hasSent(h) {
			binds[i] = Binding{Ref: binds[i].Ref, Hash: h}
		} else {
			pending = append(pending, h)
		}
	}
	x2 := *x
	x2.Binds = binds
	return &x2, pending
}

// uploadRefCtx stores the server-known bytes behind hash under key
// without resending them.
func (c *Client) uploadRefCtx(ctx context.Context, key string, h [HashSize]byte) (*UploadOK, error) {
	t, p, err := c.conn.CallCtx(ctx, MsgUploadRef, EncodeUploadRef(&UploadRef{Key: key, Hash: h}))
	if err != nil {
		return nil, err
	}
	if t != MsgUploadOK {
		return nil, fmt.Errorf("transport: upload_ref got %d", t)
	}
	return DecodeUploadOK(p)
}

func (c *Client) uploadDeltaCtx(ctx context.Context, u *UploadDelta) (*UploadOK, error) {
	t, p, err := c.conn.CallCtx(ctx, MsgUploadDelta, EncodeUploadDelta(u))
	if err != nil {
		return nil, err
	}
	if t != MsgUploadOK {
		return nil, fmt.Errorf("transport: upload_delta got %d", t)
	}
	return DecodeUploadOK(p)
}
