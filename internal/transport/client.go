package transport

import (
	"context"
	"fmt"
	"sync"
	"time"

	"genie/internal/obs"
	"genie/internal/tensor"
)

// Client is the typed RPC surface over a framed connection to one
// backend.
type Client struct {
	conn *Conn

	// Dedup/delta bookkeeping (client_feat.go), active only after
	// Negotiate grants FeatDedup/FeatDelta. Guarded by dmu — separate
	// from the conn's frame lock so hashing never serializes I/O.
	dmu       sync.Mutex
	epoch     uint32
	sent      map[[HashSize]byte]struct{}
	hashes    map[*tensor.Tensor][HashSize]byte
	prev      map[string]prevVersion
	prevBytes int64
}

// NewClient wraps a connection.
func NewClient(conn *Conn) *Client { return &Client{conn: conn} }

// Conn exposes the underlying connection (for counters).
func (c *Client) Conn() *Conn { return c.conn }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Ping measures a protocol round trip.
func (c *Client) Ping() (time.Duration, error) {
	return c.PingCtx(nil)
}

// PingCtx is Ping with the context's deadline applied — the liveness
// probe used to confirm a backend recovered before routing work back.
func (c *Client) PingCtx(ctx context.Context) (time.Duration, error) {
	start := time.Now()
	t, _, err := c.conn.CallCtx(ctx, MsgPing, nil)
	if err != nil {
		return 0, err
	}
	if t != MsgPong {
		return 0, fmt.Errorf("transport: ping got %d", t)
	}
	return time.Since(start), nil
}

// Upload stores a tensor remotely under key.
func (c *Client) Upload(key string, data *tensor.Tensor) (*UploadOK, error) {
	return c.UploadCtx(nil, key, data)
}

// UploadCtx is Upload carrying trace context: a "transport.upload"
// span wraps the round trip and rides the wire envelope. A nil or
// untraced ctx degrades to the plain path.
//
// On feature-negotiated connections the upload takes the cheapest
// representation the server can accept: a 32-byte content-hash ref
// when the server has already seen these exact bytes (FeatDedup), an
// XOR/run-length delta against the key's previous version when most
// bytes are unchanged (FeatDelta), and a full payload otherwise. A
// server that lost the referenced state (crash between calls) rejects
// the cheap form with a recoverable error and the client falls back to
// the full upload — correctness never depends on the caches agreeing.
func (c *Client) UploadCtx(ctx context.Context, key string, data *tensor.Tensor) (*UploadOK, error) {
	feats := c.conn.Features()
	if feats&(FeatDedup|FeatDelta) == 0 {
		return c.uploadFullCtx(ctx, key, data, [HashSize]byte{}, false)
	}
	h := c.hashOf(data)
	if feats&FeatDedup != 0 && c.hasSent(h) {
		ack, err := c.uploadRefCtx(ctx, key, h)
		if err == nil {
			c.noteUpload(key, data, h, ack)
			return ack, nil
		}
		if !isUnknownContent(err) {
			return nil, err
		}
		c.flushDedup() // server lost its cache; resync from scratch
	}
	if feats&FeatDelta != 0 && data.DType() != tensor.I8 {
		if base, ok := c.prevFor(key, tensor.MetaOf(data)); ok {
			delta := EncodeDelta(base, data.Bytes())
			// Only worth a round trip when the delta at least halves the
			// payload; otherwise full upload is simpler and compresses too.
			if len(delta)*2 < data.NumBytes() {
				ack, err := c.uploadDeltaCtx(ctx, &UploadDelta{
					Key: key, DType: data.DType(), Shape: data.Shape(),
					Delta: delta, Hash: h,
				})
				if err == nil {
					c.noteUpload(key, data, h, ack)
					return ack, nil
				}
				if !isUnknownContent(err) {
					return nil, err
				}
			}
		}
	}
	return c.uploadFullCtx(ctx, key, data, h, true)
}

// uploadFullCtx sends the complete payload; track records dedup state
// on success (skipped entirely on legacy connections).
func (c *Client) uploadFullCtx(ctx context.Context, key string, data *tensor.Tensor, h [HashSize]byte, track bool) (*UploadOK, error) {
	// Pooled scratch: the round trip is synchronous, so the payload can
	// go back to the pool as soon as the call returns.
	payload := EncodeUploadPooled(&Upload{Key: key, Data: data})
	defer ReleaseEncoded(payload)
	_, span := obs.StartSpan(ctx, "transport.upload")
	span.SetAttrInt("send_bytes", int64(len(payload)))
	t, p, err := c.conn.CallEnvCtx(ctx, MsgUpload, Envelope{Trace: span.TraceID(), Span: span.SpanID()}, payload)
	span.SetAttrInt("recv_bytes", int64(len(p)))
	span.End()
	if err != nil {
		return nil, err
	}
	if t != MsgUploadOK {
		return nil, fmt.Errorf("transport: upload got %d", t)
	}
	ack, err := DecodeUploadOK(p)
	if err == nil && track {
		c.noteUpload(key, data, h, ack)
	}
	return ack, err
}

// Exec ships a subgraph for remote execution.
func (c *Client) Exec(x *Exec) (*ExecOK, error) {
	return c.ExecCtx(nil, x)
}

// ExecCtx is Exec carrying trace context: a "transport.exec" span
// wraps the round trip, and the span IDs ride the wire envelope so the
// server parents its execution span under this one.
//
// Bindings marked Cache are rewritten for the negotiated feature set
// (hash refs on dedup connections, plain inline otherwise) on a copy —
// the caller's Exec is never mutated, so the one-shot retry after a
// server-side cache loss re-sends the original tensors in full.
func (c *Client) ExecCtx(ctx context.Context, x *Exec) (*ExecOK, error) {
	wire, pending := c.rewriteBinds(x, c.conn.Features())
	ok, err := c.execOnce(ctx, wire)
	if err != nil && isUnknownContent(err) && wire != x {
		// The server forgot bytes we hash-referenced (crash or cache
		// reset). Flush, rewrite again — now everything goes inline with
		// fresh cache hints — and retry once.
		c.flushDedup()
		wire, pending = c.rewriteBinds(x, c.conn.Features())
		ok, err = c.execOnce(ctx, wire)
	}
	if err != nil {
		return nil, err
	}
	c.noteExec(ok.Epoch, pending)
	return ok, nil
}

func (c *Client) execOnce(ctx context.Context, x *Exec) (*ExecOK, error) {
	payload, err := EncodeExecPooled(x)
	if err != nil {
		return nil, err
	}
	defer ReleaseEncoded(payload)
	_, span := obs.StartSpan(ctx, "transport.exec")
	span.SetAttrInt("send_bytes", int64(len(payload)))
	t, p, err := c.conn.CallEnvCtx(ctx, MsgExec, Envelope{Trace: span.TraceID(), Span: span.SpanID()}, payload)
	span.SetAttrInt("recv_bytes", int64(len(p)))
	span.End()
	if err != nil {
		return nil, err
	}
	if t != MsgExecOK {
		return nil, fmt.Errorf("transport: exec got %d", t)
	}
	return DecodeExecOK(p)
}

// ExecVerified ships a subgraph and verifies the server's execution
// attestation: the response must echo the fingerprint of the graph that
// was sent. A mismatch means the server executed something else
// (tampering, misrouting, or a buggy proxy) and is returned as an error
// with the results discarded.
func (c *Client) ExecVerified(x *Exec) (*ExecOK, error) {
	want := x.Graph.Fingerprint()
	ok, err := c.Exec(x)
	if err != nil {
		return nil, err
	}
	if ok.GraphFP != want {
		return nil, fmt.Errorf("transport: execution attestation mismatch: sent %s, server ran %s",
			want, ok.GraphFP)
	}
	return ok, nil
}

// Fetch retrieves a resident object; epoch 0 skips staleness checking.
func (c *Client) Fetch(key string, epoch uint32) (*tensor.Tensor, error) {
	return c.FetchCtx(nil, key, epoch)
}

// FetchCtx is Fetch with the context's deadline applied to the round
// trip.
func (c *Client) FetchCtx(ctx context.Context, key string, epoch uint32) (*tensor.Tensor, error) {
	t, p, err := c.conn.CallCtx(ctx, MsgFetch, EncodeFetch(&Fetch{Key: key, Epoch: epoch}))
	if err != nil {
		return nil, err
	}
	if t != MsgTensor {
		return nil, fmt.Errorf("transport: fetch got %d", t)
	}
	return DecodeTensorMsg(p)
}

// Free releases a resident object.
func (c *Client) Free(key string) error {
	t, _, err := c.conn.Call(MsgFree, EncodeFetch(&Fetch{Key: key}))
	if err != nil {
		return err
	}
	if t != MsgFreeOK {
		return fmt.Errorf("transport: free got %d", t)
	}
	return nil
}

// Crash injects a server failure (drops all resident state).
func (c *Client) Crash() error {
	t, _, err := c.conn.Call(MsgCrash, nil)
	if err != nil {
		return err
	}
	if t != MsgCrashOK {
		return fmt.Errorf("transport: crash got %d", t)
	}
	return nil
}

// Stats fetches server counters.
func (c *Client) Stats() (*Stats, error) {
	t, p, err := c.conn.Call(MsgStats, nil)
	if err != nil {
		return nil, err
	}
	if t != MsgStatsOK {
		return nil, fmt.Errorf("transport: stats got %d", t)
	}
	return DecodeStats(p)
}
