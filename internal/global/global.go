// Package global implements the semantics-aware global scheduler of
// §3.6: Genie instances submit SRGs as first-class workload descriptions,
// and the coordinator decides *where* (heterogeneous placement), *when*
// (elastic phase-driven scaling), and *how* (cross-tenant orchestration:
// decode batching and SLO priority) each should execute — decisions that
// are impossible for systems blind to application intent.
package global

import (
	"fmt"
	"sort"
	"time"

	"genie/internal/cluster"
	"genie/internal/device"
	"genie/internal/scheduler"
	"genie/internal/srg"
)

// SLO classifies a submission's latency expectation.
type SLO int

// SLO classes (on-demand vs batch, §2.2).
const (
	SLOInteractive SLO = iota
	SLOBatch
)

// String implements fmt.Stringer.
func (s SLO) String() string {
	if s == SLOInteractive {
		return "interactive"
	}
	return "batch"
}

// WorkloadClass is the coordinator's coarse classification of an SRG —
// Table 1's rows, derived from annotations alone.
type WorkloadClass string

// Classes recognized from SRG phase/modality annotations.
const (
	ClassLLM            WorkloadClass = "llm"
	ClassVision         WorkloadClass = "vision"
	ClassRecommendation WorkloadClass = "recommendation"
	ClassMultiModal     WorkloadClass = "multimodal"
	ClassGeneric        WorkloadClass = "generic"
)

// Classify derives the workload class from SRG annotations.
func Classify(g *srg.Graph) WorkloadClass {
	phases := map[srg.Phase]bool{}
	for _, n := range g.Nodes() {
		phases[n.Phase] = true
	}
	switch {
	case phases[srg.PhaseFusion]:
		return ClassMultiModal
	case phases[srg.PhaseLLMPrefill] || phases[srg.PhaseLLMDecode]:
		return ClassLLM
	case phases[srg.PhaseCVStage]:
		return ClassVision
	case phases[srg.PhaseSparse]:
		return ClassRecommendation
	}
	return ClassGeneric
}

// Submission is one tenant's request: an annotated SRG plus scheduling
// metadata.
type Submission struct {
	Tenant string
	Graph  *srg.Graph
	SLO    SLO
	// Arrival orders submissions in simulated streams.
	Arrival time.Duration
}

// Coordinator is the fleet-wide scheduler.
type Coordinator struct {
	cs    *cluster.State
	model *scheduler.CostModel
}

// NewCoordinator builds a coordinator over the given pool.
func NewCoordinator(cs *cluster.State, model *scheduler.CostModel) *Coordinator {
	return &Coordinator{cs: cs, model: model}
}

// --- Where: heterogeneous placement ---

// deviceAffinity scores how well a device suits a workload class; lower
// is better (expected latency proxy × relative cost).
func deviceAffinity(class WorkloadClass, g *srg.Graph, spec device.Spec) float64 {
	total := g.TotalCost()
	// Latency proxy from the roofline.
	lat := spec.KernelTime(total.FLOPs, total.Bytes).Seconds()
	if lat <= 0 {
		lat = 1e-9
	}
	score := lat * spec.CostPerHour
	// Class-specific adjustments the paper sketches: memory-bandwidth
	// workloads (decode-heavy LLM, vision transformers) prefer high-BW
	// parts; sparse recommendation prefers capacity per dollar.
	switch class {
	case ClassRecommendation:
		score *= 1 / (float64(spec.MemBytes) / 1e9 / spec.CostPerHour) // favor GB/$
	case ClassVision, ClassLLM:
		score *= 1e12 / spec.MemBandwidth // favor bandwidth
	}
	return score
}

// PlaceTenant selects the best device class for a submission and returns
// a placement plan from the semantics-aware policy constrained to that
// device.
func (c *Coordinator) PlaceTenant(sub Submission) (*scheduler.Plan, cluster.AcceleratorID, error) {
	class := Classify(sub.Graph)
	remote := c.cs.Remote()
	if len(remote) == 0 {
		return nil, "", fmt.Errorf("global: empty pool")
	}
	best := remote[0]
	bestScore := deviceAffinity(class, sub.Graph, best.Spec)
	for _, a := range remote[1:] {
		if s := deviceAffinity(class, sub.Graph, a.Spec); s < bestScore {
			best, bestScore = a, s
		}
	}
	// Constrain the semantic policy to the chosen device by building a
	// single-device view.
	view := cluster.NewState()
	if err := view.AddAccelerator(best); err != nil {
		return nil, "", err
	}
	mirrorResidency(c.cs, view, sub.Graph, best.ID)
	plan, err := scheduler.Schedule(sub.Graph, view, scheduler.SemanticsAware{}, c.model)
	if err != nil {
		return nil, "", err
	}
	c.cs.IncQueue(best.ID)
	return plan, best.ID, nil
}

// mirrorResidency copies residency facts relevant to the graph into the
// single-device view.
func mirrorResidency(src, dst *cluster.State, g *srg.Graph, dev cluster.AcceleratorID) {
	for _, n := range g.Nodes() {
		if n.Op != "param" && n.Op != "input" {
			continue
		}
		if acc, ok := src.ResidentOn(n.Ref); ok && acc == dev {
			dst.SetResident(n.Ref, dev, n.Output.Bytes())
		}
	}
}

// --- When: elastic phase-driven scaling ---

// PhaseDemand aggregates resource demand per phase across submissions.
type PhaseDemand struct {
	Phase srg.Phase
	FLOPs float64
	Bytes int64
}

// ScalePlan recommends accelerator counts per phase for a target
// completion window: compute-bound phases scale by FLOPs, memory-bound
// by bytes (the prefill-burst / decode-steady asymmetry of §3.6).
type ScalePlan struct {
	Demands map[srg.Phase]PhaseDemand
	Devices map[srg.Phase]int
}

// ElasticScale sizes per-phase pools over the given device class and
// window.
func ElasticScale(subs []Submission, spec device.Spec, window time.Duration) ScalePlan {
	plan := ScalePlan{
		Demands: map[srg.Phase]PhaseDemand{},
		Devices: map[srg.Phase]int{},
	}
	for _, sub := range subs {
		for _, n := range sub.Graph.Nodes() {
			if n.Op == "param" || n.Op == "input" {
				continue
			}
			d := plan.Demands[n.Phase]
			d.Phase = n.Phase
			d.FLOPs += n.Cost.FLOPs
			d.Bytes += n.Cost.Bytes
			plan.Demands[n.Phase] = d
		}
	}
	w := window.Seconds()
	if w <= 0 {
		w = 1
	}
	for phase, d := range plan.Demands {
		byFLOPs := d.FLOPs / (spec.PeakFLOPS * w)
		byBytes := float64(d.Bytes) / (spec.MemBandwidth * w)
		need := byFLOPs
		if byBytes > need {
			need = byBytes
		}
		n := int(need) + 1
		if need == float64(int(need)) && n > 1 {
			n = int(need)
		}
		plan.Devices[phase] = n
	}
	return plan
}

// --- How: cross-tenant orchestration ---

// BatchGroup is a set of decode submissions against the same model that
// the coordinator fuses into one batched execution (§3.6: "identify two
// separate user requests that use the same public LLM and automatically
// batch their decode steps").
type BatchGroup struct {
	Fingerprint string
	Subs        []Submission
}

// BatchDecodes groups decode-phase submissions by SRG fingerprint. Only
// graphs containing a decode phase batch; others pass through alone.
func BatchDecodes(subs []Submission) (groups []BatchGroup, singles []Submission) {
	byFP := map[string]*BatchGroup{}
	var fps []string
	for _, sub := range subs {
		if !hasPhase(sub.Graph, srg.PhaseLLMDecode) {
			singles = append(singles, sub)
			continue
		}
		fp := sub.Graph.Fingerprint()
		g, ok := byFP[fp]
		if !ok {
			g = &BatchGroup{Fingerprint: fp}
			byFP[fp] = g
			fps = append(fps, fp)
		}
		g.Subs = append(g.Subs, sub)
	}
	for _, fp := range fps {
		groups = append(groups, *byFP[fp])
	}
	return groups, singles
}

func hasPhase(g *srg.Graph, p srg.Phase) bool {
	for _, n := range g.Nodes() {
		if n.Phase == p {
			return true
		}
	}
	return false
}

// BatchSpeedup estimates the throughput gain of batching n same-model
// decode steps on spec: the weight read amortizes across the batch while
// per-request work (KV reads, small GEMV FLOPs) does not. This is the
// quantity bench A6 sweeps.
func BatchSpeedup(spec device.Spec, weightBytes, perReqBytes int64, perReqFLOPs float64, n int) float64 {
	if n <= 1 {
		return 1
	}
	single := spec.KernelTime(perReqFLOPs, weightBytes+perReqBytes).Seconds()
	batched := spec.KernelTime(perReqFLOPs*float64(n), weightBytes+perReqBytes*int64(n)).Seconds()
	if batched <= 0 {
		return 1
	}
	return single * float64(n) / batched
}

// Less is the dispatch-priority comparator: interactive before batch,
// then arrival order. §3.6: "prioritize interactive, latency-sensitive
// VQA queries over long-running batch training jobs". Both the offline
// Prioritize pass and the online engine's admission queues order by it.
func Less(a, b Submission) bool {
	if a.SLO != b.SLO {
		return a.SLO < b.SLO
	}
	return a.Arrival < b.Arrival
}

// Prioritize orders submissions for dispatch by Less (stable).
func Prioritize(subs []Submission) []Submission {
	out := append([]Submission(nil), subs...)
	sort.SliceStable(out, func(i, j int) bool { return Less(out[i], out[j]) })
	return out
}
