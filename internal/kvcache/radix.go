package kvcache

// The radix tree maps token sequences to resident KV pages. Each node
// owns the pages for the tokens on its edge label; a path from the root
// spells a prompt prefix and the concatenation of the path's runs is that
// prefix's KV state.
//
// Concurrency model: every tree operation runs under the Manager's
// mutex, and a lookup's page reads (the gather into session-owned
// scratch) happen inside that same critical section. After Lookup
// returns, the session never touches tree pages again — so eviction and
// splits need no page-level synchronization. Eviction protection is
// derived, not stored on nodes: each live Pin records its token range in
// the Manager's registry, and the LRU sweep re-matches every pin to mark
// the protected paths. Deriving it from tokens (rather than refcounting
// node pointers) is what keeps protection correct across splits — the
// re-match follows a pinned range into whichever nodes now spell it.
type node struct {
	parent *node
	label  []int64 // tokens on the edge from parent
	run    *pageRun
	// children is keyed by the first token of each child's label (radix
	// property: at most one child per distinct next token).
	children map[int64]*node
	lastUse  uint64
}

func (n *node) addChild(c *node) {
	if n.children == nil {
		n.children = make(map[int64]*node)
	}
	n.children[c.label[0]] = c
	c.parent = n
}

// pathSeg is one matched node plus how many of its label tokens matched
// (rows < len(label) only ever on the final segment).
type pathSeg struct {
	n    *node
	rows int
}

// match walks the tree greedily over tokens, returning the matched path.
// The total matched length is the sum of seg rows.
func (m *Manager) match(tokens []int64) []pathSeg {
	var path []pathSeg
	cur := m.root
	i := 0
	for i < len(tokens) {
		child, ok := cur.children[tokens[i]]
		if !ok {
			break
		}
		j := 0
		for j < len(child.label) && i+j < len(tokens) && child.label[j] == tokens[i+j] {
			j++
		}
		path = append(path, pathSeg{child, j})
		i += j
		if j < len(child.label) {
			break
		}
		cur = child
	}
	return path
}

// split divides n's label at off: n keeps label[:off] (truncating its run
// in place), and a new child takes label[off:] with a fresh copy of the
// tail rows plus n's former children. This is the copy-on-extend rule —
// the cost of a divergence is bounded by the tail being split off, never
// by re-copying the shared head. Split needs no pin bookkeeping: a pin
// records tokens, not node pointers, so a pinned range that extends past
// off keeps protecting the tail child the moment the sweep re-matches it.
func (m *Manager) split(n *node, off int) error {
	tail, err := n.run.cloneRange(off, n.run.tokens)
	if err != nil {
		return err
	}
	child := &node{
		label:    append([]int64(nil), n.label[off:]...),
		run:      tail,
		children: n.children,
		lastUse:  n.lastUse,
	}
	for _, gc := range child.children {
		gc.parent = child
	}
	before := n.run.bytes()
	n.run.truncate(off)
	n.label = n.label[:off]
	n.children = nil
	n.addChild(child)
	m.bytes += tail.bytes() - (before - n.run.bytes())
	m.nodes++
	return nil
}

// evict sweeps least-recently-used childless unprotected nodes until the
// resident bytes fit the budget (or nothing evictable remains). A node
// is protected when some live pin's token range covers any of its label
// rows — computed by re-matching every registered pin against the
// current tree, so a split tail that carries pinned rows stays protected
// even though its node object postdates the pin. Pinned paths can hold
// the cache over budget; the next Unpin+insert cycle reclaims them.
func (m *Manager) evict() {
	if m.bytes <= m.cfg.BudgetBytes {
		return
	}
	protected := make(map[*node]bool, len(m.pins))
	for p := range m.pins {
		for _, s := range m.match(p.tokens) {
			protected[s.n] = true
		}
	}
	for m.bytes > m.cfg.BudgetBytes {
		var victim *node
		m.walk(m.root, func(n *node) {
			if n == m.root || len(n.children) > 0 || protected[n] {
				return
			}
			if victim == nil || n.lastUse < victim.lastUse {
				victim = n
			}
		})
		if victim == nil {
			return
		}
		m.bytes -= victim.run.bytes()
		victim.run.release()
		delete(victim.parent.children, victim.label[0])
		m.nodes--
		m.evictions.Inc()
	}
}

func (m *Manager) walk(n *node, fn func(*node)) {
	fn(n)
	for _, c := range n.children {
		m.walk(c, fn)
	}
}
