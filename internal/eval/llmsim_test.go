package eval

import (
	"testing"
	"time"

	"genie/internal/runtime"
	"genie/internal/scheduler"
)

// TestTable2PaperShape checks every fidelity target from DESIGN.md §4
// against the regenerated Table 2.
func TestTable2PaperShape(t *testing.T) {
	cfg := PaperConfig()
	rows := Table2(cfg)
	byMode := map[runtime.Mode]Result{}
	for _, r := range rows {
		byMode[r.Prefill.Mode] = r
	}
	local := byMode[runtime.ModeLocal]
	naive := byMode[runtime.ModeNaive]
	dkv := byMode[runtime.ModeDeltaKV]
	sem := byMode[runtime.ModeSemAware]

	// Local magnitudes: paper 0.21 s prefill, 1.53 s decode (±30%).
	within := func(got time.Duration, want float64, tol float64) bool {
		g := got.Seconds()
		return g > want*(1-tol) && g < want*(1+tol)
	}
	if !within(local.Prefill.Latency, 0.21, 0.35) {
		t.Errorf("local prefill %.3fs, paper 0.21s", local.Prefill.Latency.Seconds())
	}
	if !within(local.Decode.Latency, 1.53, 0.35) {
		t.Errorf("local decode %.2fs, paper 1.53s", local.Decode.Latency.Seconds())
	}
	if local.Prefill.NetBytes != 0 || local.Decode.NetBytes != 0 {
		t.Error("local mode must move no network bytes")
	}
	if local.Prefill.Util() < 0.95 {
		t.Errorf("local prefill util %.2f", local.Prefill.Util())
	}

	// Remote latency ordering for decode: naive >> delta_kv > sem.
	if naive.Decode.Latency < 5*dkv.Decode.Latency {
		t.Errorf("naive decode %.0fs should dwarf delta_kv %.0fs",
			naive.Decode.Latency.Seconds(), dkv.Decode.Latency.Seconds())
	}
	if dkv.Decode.Latency <= sem.Decode.Latency {
		t.Errorf("delta_kv decode %.0fs should exceed semantics-aware %.0fs",
			dkv.Decode.Latency.Seconds(), sem.Decode.Latency.Seconds())
	}
	// Prefill: naive ≈ 2× the RPC-bound baseline (paper: 216 vs ~110).
	if naive.Prefill.Latency < time.Duration(1.5*float64(sem.Prefill.Latency)) {
		t.Errorf("naive prefill %.0fs should be ≥1.5× sem %.0fs",
			naive.Prefill.Latency.Seconds(), sem.Prefill.Latency.Seconds())
	}

	// Traffic gaps: ≥3 orders of magnitude naive vs sem in both phases
	// (paper: 26,000× prefill, 8,400× decode).
	if naive.Prefill.NetBytes < 1000*sem.Prefill.NetBytes {
		t.Errorf("prefill traffic gap %d/%d too small",
			naive.Prefill.NetBytes, sem.Prefill.NetBytes)
	}
	if naive.Decode.NetBytes < 1000*sem.Decode.NetBytes {
		t.Errorf("decode traffic gap %d/%d too small",
			naive.Decode.NetBytes, sem.Decode.NetBytes)
	}
	if dkv.Decode.NetBytes <= sem.Decode.NetBytes {
		t.Error("delta_kv should move more decode bytes than semantics-aware")
	}

	// Utilization: blind modes idle ≥98% (paper ≤2% util); sem several
	// times better than naive (paper 6×).
	if naive.Decode.Util() > 0.02 {
		t.Errorf("naive decode util %.3f should be <2%%", naive.Decode.Util())
	}
	if sem.Decode.Util() < 3*naive.Decode.Util() {
		t.Errorf("sem util %.4f should be ≫ naive %.4f",
			sem.Decode.Util(), naive.Decode.Util())
	}
	if sem.Decode.Util() > 0.1 {
		t.Errorf("sem decode util %.3f should still be ≪ local", sem.Decode.Util())
	}
}

// TestTable2PaperMagnitudes pins the cells that the calibration targets
// directly (see EXPERIMENTS.md): the RPC-bound remote latencies.
func TestTable2PaperMagnitudes(t *testing.T) {
	cfg := PaperConfig()
	sem := cfg.Run(runtime.ModeSemAware)
	dkv := cfg.Run(runtime.ModeDeltaKV)

	// Paper: sem prefill 111 s, sem decode 116 s, ΔKV decode 131 s —
	// all dominated by the ~110 s Python RPC constant. Allow ±15%.
	check := func(name string, got time.Duration, want float64) {
		g := got.Seconds()
		if g < want*0.85 || g > want*1.15 {
			t.Errorf("%s = %.1fs, paper %.0fs", name, g, want)
		}
	}
	check("sem prefill", sem.Prefill.Latency, 111)
	check("sem decode(50)", sem.Decode.Latency, 116)
	check("delta_kv decode(50)", dkv.Decode.Latency, 131)

	// Naive prefill: paper 216 s (weights through the pickling stack).
	naive := cfg.Run(runtime.ModeNaive)
	check("naive prefill", naive.Prefill.Latency, 216)
}

// TestTable3Shape reproduces the scaling table: ΔKV grows linearly with
// N; semantics-aware stays nearly flat; by N=200 the gap is ≥1.5×.
func TestTable3Shape(t *testing.T) {
	cfg := PaperConfig()
	points := Table3(cfg, []int{50, 100, 150, 200})
	lat := map[runtime.Mode]map[int]time.Duration{
		runtime.ModeDeltaKV:  {},
		runtime.ModeSemAware: {},
	}
	for _, p := range points {
		lat[p.Mode][p.N] = p.Latency
	}
	dkv, sem := lat[runtime.ModeDeltaKV], lat[runtime.ModeSemAware]

	// ΔKV: roughly constant per-50-token increment (linear total).
	inc1 := dkv[100] - dkv[50]
	inc3 := dkv[200] - dkv[150]
	if inc1 <= 0 || inc3 <= 0 {
		t.Fatalf("ΔKV latency not increasing: %v", dkv)
	}
	ratio := float64(inc3) / float64(inc1)
	if ratio < 0.5 || ratio > 2.5 {
		t.Errorf("ΔKV increments not roughly linear: %v vs %v", inc1, inc3)
	}
	// Semantics-aware: ≤15% growth from N=50 to N=200 (paper: 114→119).
	if growth := float64(sem[200])/float64(sem[50]) - 1; growth > 0.15 {
		t.Errorf("semantics-aware decode grew %.0f%% from N=50 to 200", growth*100)
	}
	// Crossover factor at N=200: paper ~1.7×.
	factor := float64(dkv[200]) / float64(sem[200])
	if factor < 1.5 {
		t.Errorf("ΔKV/sem at N=200 = %.2f, paper ~1.7", factor)
	}
}

// TestRPCOverheadSweep is ablation A7: with an RDMA-class transport the
// ordering is preserved but the absolute gap to local collapses —
// exactly the paper's "orthogonal work" claim (§4).
func TestRPCOverheadSweep(t *testing.T) {
	cfg := PaperConfig()
	cfg.RPC = rdmaProfile()
	local := cfg.Run(runtime.ModeLocal)
	sem := cfg.Run(runtime.ModeSemAware)
	dkv := cfg.Run(runtime.ModeDeltaKV)

	if sem.Decode.Latency >= dkv.Decode.Latency {
		t.Error("ordering must be preserved under RDMA")
	}
	// With zero-copy RPC, sem decode should come within 3× of local
	// (vs ~75× under TensorPipe).
	if sem.Decode.Latency > 3*local.Decode.Latency {
		t.Errorf("RDMA sem decode %.2fs vs local %.2fs — gap should collapse",
			sem.Decode.Latency.Seconds(), local.Decode.Latency.Seconds())
	}
	// And utilization should rise dramatically.
	if sem.Decode.Util() < 0.3 {
		t.Errorf("RDMA sem decode util %.2f should approach local", sem.Decode.Util())
	}
}

// TestNaiveReuploadCalibration: the paper's measured naive numbers imply
// upload amortization; with period ≈6.5 the decode magnitude lands near
// 783 s.
func TestNaiveReuploadCalibration(t *testing.T) {
	cfg := PaperConfig()
	cfg.NaiveReuploadPeriod = 6.5
	naive := cfg.Run(runtime.ModeNaive)
	g := naive.Decode.Latency.Seconds()
	if g < 500 || g > 1100 {
		t.Errorf("calibrated naive decode %.0fs, paper 783s", g)
	}
	// Strict per-call re-upload is far slower.
	strict := PaperConfig().Run(runtime.ModeNaive)
	if strict.Decode.Latency < 3*naive.Decode.Latency {
		t.Error("strict re-upload should dwarf amortized")
	}
}

func rdmaProfile() scheduler.RPCProfile { return scheduler.RDMAProfile }
