package scheduler

import (
	"errors"
	"testing"
	"time"

	"genie/internal/cluster"
	"genie/internal/device"
)

type fakeProber struct {
	rtts []time.Duration
	i    int
	err  error
}

func (f *fakeProber) Ping() (time.Duration, error) {
	if f.err != nil {
		return 0, f.err
	}
	r := f.rtts[f.i%len(f.rtts)]
	f.i++
	return r, nil
}

func hintPool(t *testing.T) *cluster.State {
	t.Helper()
	cs := cluster.NewState()
	if err := cs.AddAccelerator(&cluster.Accelerator{
		ID: "gpu0", Spec: device.A100,
		Link: cluster.Link{Bandwidth: 1e9, RTT: 10 * time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestAdaptHintsTakesMinimumRTT(t *testing.T) {
	cs := hintPool(t)
	p := &fakeProber{rtts: []time.Duration{
		3 * time.Millisecond, 900 * time.Microsecond, 5 * time.Millisecond,
	}}
	if err := AdaptHints(cs, "gpu0", p, 3); err != nil {
		t.Fatal(err)
	}
	if got := cs.Accelerator("gpu0").Link.RTT; got != 900*time.Microsecond {
		t.Errorf("adapted RTT %v", got)
	}
}

func TestAdaptHintsErrors(t *testing.T) {
	cs := hintPool(t)
	if err := AdaptHints(cs, "nope", &fakeProber{rtts: []time.Duration{1}}, 1); err == nil {
		t.Error("unknown accelerator should fail")
	}
	if err := AdaptHints(cs, "gpu0", &fakeProber{err: errors.New("down")}, 1); err == nil {
		t.Error("probe failure should propagate")
	}
}

func TestObserveTransferEstimatesCongestion(t *testing.T) {
	cs := hintPool(t)
	// 1e9 B/s nominal; we achieved 2.5e8 B/s → 75% of the link is
	// otherwise occupied. EWMA from 0: 0.375.
	if err := ObserveTransfer(cs, "gpu0", 2.5e8, time.Second); err != nil {
		t.Fatal(err)
	}
	got := cs.Accelerator("gpu0").Link.Congestion
	if got < 0.37 || got > 0.38 {
		t.Errorf("congestion %v, want ~0.375", got)
	}
	// A second identical observation moves the EWMA toward 0.75.
	if err := ObserveTransfer(cs, "gpu0", 2.5e8, time.Second); err != nil {
		t.Fatal(err)
	}
	got = cs.Accelerator("gpu0").Link.Congestion
	if got < 0.55 || got > 0.57 {
		t.Errorf("congestion after 2nd sample %v, want ~0.5625", got)
	}
}

func TestObserveTransferClampsAndValidates(t *testing.T) {
	cs := hintPool(t)
	// Faster-than-nominal transfer clamps to zero congestion.
	if err := ObserveTransfer(cs, "gpu0", 5e9, time.Second); err != nil {
		t.Fatal(err)
	}
	if got := cs.Accelerator("gpu0").Link.Congestion; got != 0 {
		t.Errorf("congestion %v, want 0", got)
	}
	if err := ObserveTransfer(cs, "gpu0", 0, time.Second); err == nil {
		t.Error("zero bytes should be rejected")
	}
	if err := ObserveTransfer(cs, "nope", 1, time.Second); err == nil {
		t.Error("unknown accelerator should fail")
	}
}

// TestAdaptThenScheduleChangesDecision shows the loop closing: a
// congestion observation flips the recomputation decision on the next
// Schedule call.
func TestAdaptThenScheduleChangesDecision(t *testing.T) {
	cs := pool(t, 2)
	g := cnnGraph(t)
	policy := SemanticsAware{RecomputeThresholdFLOPs: 1e9}

	before, err := Schedule(g, cs, policy, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Recompute) != 0 {
		t.Fatal("no recomputation expected on an idle link")
	}
	// Observed transfers on device b achieve 5% of nominal — heavy
	// congestion.
	for i := 0; i < 6; i++ {
		if err := ObserveTransfer(cs, "b", int64(0.05*25e9/8), time.Second); err != nil {
			t.Fatal(err)
		}
	}
	after, err := Schedule(g, cs, policy, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Recompute) == 0 {
		t.Error("congestion observation should trigger recomputation")
	}
}
