package kvcache

import (
	"math/rand"
	"testing"

	"genie/internal/models"
	"genie/internal/tensor"
)

func testManager(t *testing.T, budget int64, pageTokens int) *Manager {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	m, err := NewManager(Config{
		Model:       models.NewGPT(rng, models.TinyGPT),
		BudgetBytes: budget,
		PageTokens:  pageTokens,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// freshRows fabricates per-layer [rows, dim] K/V tensors whose values
// encode (base, layer, row, col) so any misplaced row is detectable.
func freshRows(t *testing.T, layers, rows, dim int, base float32) (ks, vs []*tensor.Tensor) {
	t.Helper()
	for l := 0; l < layers; l++ {
		k := tensor.New(tensor.F32, rows, dim)
		v := tensor.New(tensor.F32, rows, dim)
		for r := 0; r < rows; r++ {
			for c := 0; c < dim; c++ {
				k.F32()[r*dim+c] = base + float32(l)*1000 + float32(r)*10 + float32(c)/100
				v.F32()[r*dim+c] = -(base + float32(l)*1000 + float32(r)*10 + float32(c)/100)
			}
		}
		ks = append(ks, k)
		vs = append(vs, v)
	}
	return ks, vs
}

// insertSeq runs the Lookup+Insert cycle a prefill performs, fabricating
// fresh rows for the uncached suffix with values derived from absolute
// row positions (so reassembled prefixes are comparable across inserts).
func insertSeq(t *testing.T, m *Manager, tokens []int64) *Pin {
	t.Helper()
	pin, _, release, matched, err := m.Lookup(tokens)
	if err != nil {
		t.Fatal(err)
	}
	release()
	cfg := m.Model().Cfg
	ks, vs := absRows(t, cfg.Layers, matched, len(tokens), cfg.Dim, tokens)
	defer releaseAll(ks, vs)
	ins, err := m.Insert(tokens, matched, ks, vs)
	if err != nil {
		t.Fatal(err)
	}
	pin.Unpin()
	return ins
}

// absRows fabricates rows for absolute positions [lo, hi): the value at
// position p depends only on (tokens[:p+1], layer, col), mimicking real
// KV rows (each row is a function of the prefix up to it).
func absRows(t *testing.T, layers, lo, hi, dim int, tokens []int64) (ks, vs []*tensor.Tensor) {
	t.Helper()
	for l := 0; l < layers; l++ {
		k := tensor.New(tensor.F32, hi-lo, dim)
		v := tensor.New(tensor.F32, hi-lo, dim)
		for r := lo; r < hi; r++ {
			var seed float32
			for _, tok := range tokens[:r+1] {
				seed = seed*31 + float32(tok)
			}
			for c := 0; c < dim; c++ {
				k.F32()[(r-lo)*dim+c] = seed + float32(l)*1e6 + float32(c)/100
				v.F32()[(r-lo)*dim+c] = -seed - float32(l)*1e6 - float32(c)/100
			}
		}
		ks = append(ks, k)
		vs = append(vs, v)
	}
	return ks, vs
}

func releaseAll(ks, vs []*tensor.Tensor) {
	for i := range ks {
		ks[i].Release()
		vs[i].Release()
	}
}

func TestLookupMissThenHitRoundTrip(t *testing.T) {
	m := testManager(t, 1<<20, 4)
	tokens := []int64{1, 2, 3, 4, 5, 6}

	pin, prefix, release, matched, err := m.Lookup(tokens)
	if err != nil {
		t.Fatal(err)
	}
	if matched != 0 || prefix != nil {
		t.Fatalf("cold lookup matched %d", matched)
	}
	release()
	pin.Unpin()

	ins := insertSeq(t, m, tokens)
	defer ins.Unpin()

	pin2, prefix2, release2, matched2, err := m.Lookup(tokens)
	if err != nil {
		t.Fatal(err)
	}
	defer release2()
	defer pin2.Unpin()
	// Full-prompt match clamps to len-1 so the suffix is non-empty.
	if matched2 != len(tokens)-1 {
		t.Fatalf("matched %d, want %d", matched2, len(tokens)-1)
	}
	cfg := m.Model().Cfg
	wantK, wantV := absRows(t, cfg.Layers, 0, matched2, cfg.Dim, tokens)
	defer releaseAll(wantK, wantV)
	for l := 0; l < cfg.Layers; l++ {
		if !tensor.AllClose(prefix2[l].K, wantK[l], 0, 0) {
			t.Fatalf("layer %d gathered K diverges", l)
		}
		if !tensor.AllClose(prefix2[l].V, wantV[l], 0, 0) {
			t.Fatalf("layer %d gathered V diverges", l)
		}
	}
	st := m.Snapshot()
	// Two misses: the explicit cold lookup plus insertSeq's own lookup.
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("hits/misses %d/%d", st.Hits, st.Misses)
	}
	if want := int64(matched2) * cfg.KVBytesPerToken(); st.BytesSaved != want {
		t.Fatalf("bytes saved %d, want %d", st.BytesSaved, want)
	}
}

func TestRadixSplitOnDivergence(t *testing.T) {
	m := testManager(t, 1<<20, 4)
	a := []int64{1, 2, 3, 4, 5, 6}
	bseq := []int64{1, 2, 3, 9, 8, 7}

	pa := insertSeq(t, m, a)
	defer pa.Unpin()
	if n := m.Snapshot().ResidentNodes; n != 1 {
		t.Fatalf("%d nodes after first insert", n)
	}

	// B shares [1,2,3] then diverges mid-label: the shared head must be
	// matched (not duplicated) and the node split.
	pin, _, release, matched, err := m.Lookup(bseq)
	if err != nil {
		t.Fatal(err)
	}
	release()
	if matched != 3 {
		t.Fatalf("divergent lookup matched %d, want 3", matched)
	}
	cfg := m.Model().Cfg
	ks, vs := absRows(t, cfg.Layers, matched, len(bseq), cfg.Dim, bseq)
	pb, err := m.Insert(bseq, matched, ks, vs)
	releaseAll(ks, vs)
	if err != nil {
		t.Fatal(err)
	}
	defer pb.Unpin()
	pin.Unpin()
	// head [1,2,3] + tail [4,5,6] + new [9,8,7].
	if n := m.Snapshot().ResidentNodes; n != 3 {
		t.Fatalf("%d nodes after split, want 3", n)
	}

	// Both sequences must reassemble bit-exactly after the split.
	for _, tokens := range [][]int64{a, bseq} {
		p, prefix, rel, k, err := m.Lookup(tokens)
		if err != nil {
			t.Fatal(err)
		}
		if k != len(tokens)-1 {
			t.Fatalf("post-split lookup matched %d", k)
		}
		wantK, wantV := absRows(t, cfg.Layers, 0, k, cfg.Dim, tokens)
		for l := 0; l < cfg.Layers; l++ {
			if !tensor.AllClose(prefix[l].K, wantK[l], 0, 0) || !tensor.AllClose(prefix[l].V, wantV[l], 0, 0) {
				t.Fatalf("seq %v layer %d diverges after split", tokens, l)
			}
		}
		releaseAll(wantK, wantV)
		rel()
		p.Unpin()
	}
}

func TestLRUEvictionRespectsBudgetAndPins(t *testing.T) {
	cfg := models.TinyGPT
	pageBytes := int64(4) * cfg.KVBytesPerToken() // pageTokens=4
	// Room for ~3 pages.
	m := testManager(t, 3*pageBytes, 4)

	pinned := insertSeq(t, m, []int64{10, 11, 12, 13})
	defer pinned.Unpin()

	// Disjoint sequences force evictions; the pinned path must survive.
	for i := 0; i < 6; i++ {
		p := insertSeq(t, m, []int64{20 + int64(i)*10, 21 + int64(i)*10, 22 + int64(i)*10, 23 + int64(i)*10})
		p.Unpin()
	}
	st := m.Snapshot()
	if st.Evictions == 0 {
		t.Fatal("no evictions under a 3-page budget")
	}
	if st.ResidentBytes > 3*pageBytes {
		t.Fatalf("resident %d bytes over budget %d with nothing pinned but one path", st.ResidentBytes, 3*pageBytes)
	}
	// The pinned sequence is still a full hit.
	p, _, rel, k, err := m.Lookup([]int64{10, 11, 12, 13})
	if err != nil {
		t.Fatal(err)
	}
	rel()
	p.Unpin()
	if k != 3 {
		t.Fatalf("pinned prefix matched %d after churn, want 3", k)
	}
}

func TestLookupRejectsEmptyTokens(t *testing.T) {
	m := testManager(t, 1<<20, 4)
	if _, _, _, _, err := m.Lookup(nil); err == nil {
		t.Fatal("empty lookup should error, not panic or succeed")
	}
	if _, _, _, _, err := m.Lookup([]int64{}); err == nil {
		t.Fatal("zero-length lookup should error")
	}
}

// TestSplitKeepsPinnedRangeProtected is the regression for the split/pin
// interaction: a divergent insert under budget pressure splits a node
// whose tail rows are covered by a live session's pin. The tail must
// survive the eviction sweep, or the pinned session's own Insert fails
// with "matched prefix shrank" — a failed request.
func TestSplitKeepsPinnedRangeProtected(t *testing.T) {
	cfg := models.TinyGPT
	pageBytes := int64(4) * cfg.KVBytesPerToken() // pageTokens=4
	m := testManager(t, 2*pageBytes, 4)

	seed := []int64{1, 2, 3, 4, 5, 6}
	insertSeq(t, m, seed).Unpin()

	// A live session pins the whole cached prefix [1..5] (full-prompt
	// match clamps to len-1).
	pin, _, release, matched, err := m.Lookup(seed)
	if err != nil {
		t.Fatal(err)
	}
	release()
	if matched != len(seed)-1 {
		t.Fatalf("matched %d, want %d", matched, len(seed)-1)
	}

	// A divergent insert splits the seed node at [1,2] and pushes the
	// cache over budget. The split tail [3,4,5,6] carries pinned rows
	// 3..5, so the sweep must not take it.
	div := []int64{1, 2, 9}
	dp, _, drel, dm, err := m.Lookup(div)
	if err != nil {
		t.Fatal(err)
	}
	drel()
	ks, vs := absRows(t, cfg.Layers, dm, len(div), cfg.Dim, div)
	dip, err := m.Insert(div, dm, ks, vs)
	releaseAll(ks, vs)
	if err != nil {
		t.Fatal(err)
	}
	dp.Unpin()
	dip.Unpin()

	// The pinned session finishes its own Lookup+Insert cycle. Before the
	// fix the evicted tail made the matched prefix shrink from 5 to 2 and
	// this errored.
	ks2, vs2 := absRows(t, cfg.Layers, matched, len(seed), cfg.Dim, seed)
	ip, err := m.Insert(seed, matched, ks2, vs2)
	releaseAll(ks2, vs2)
	if err != nil {
		t.Fatalf("pinned session's insert failed: %v", err)
	}

	// And the pinned prefix still reassembles bit-exactly.
	p, prefix, rel, k, err := m.Lookup(seed)
	if err != nil {
		t.Fatal(err)
	}
	if k != len(seed)-1 {
		t.Fatalf("pinned prefix matched %d after divergent churn, want %d", k, len(seed)-1)
	}
	wantK, wantV := absRows(t, cfg.Layers, 0, k, cfg.Dim, seed)
	for l := 0; l < cfg.Layers; l++ {
		if !tensor.AllClose(prefix[l].K, wantK[l], 0, 0) || !tensor.AllClose(prefix[l].V, wantV[l], 0, 0) {
			t.Fatalf("layer %d pinned prefix diverges after split", l)
		}
	}
	releaseAll(wantK, wantV)
	rel()
	p.Unpin()
	ip.Unpin()
	pin.Unpin()

	// Budget pressure must have been real — the sweep ran and took the
	// unprotected divergent leaf, just never the pinned tail.
	if m.Snapshot().Evictions == 0 {
		t.Fatal("no evictions: budget too loose to exercise the split/pin race")
	}
}

func TestInsertConvergesWithConcurrentDuplicate(t *testing.T) {
	// Two sessions race the same prompt: the second Insert must match the
	// first one's nodes and add nothing.
	m := testManager(t, 1<<20, 4)
	tokens := []int64{5, 5, 5, 5}
	cfg := m.Model().Cfg

	// Both look up before either inserts (both miss).
	p1, _, r1, m1, _ := m.Lookup(tokens)
	p2, _, r2, m2, _ := m.Lookup(tokens)
	r1()
	r2()
	if m1 != 0 || m2 != 0 {
		t.Fatal("expected double miss")
	}
	ks, vs := absRows(t, cfg.Layers, 0, len(tokens), cfg.Dim, tokens)
	i1, err := m.Insert(tokens, 0, ks, vs)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := m.Insert(tokens, 0, ks, vs)
	releaseAll(ks, vs)
	if err != nil {
		t.Fatal(err)
	}
	p1.Unpin()
	p2.Unpin()
	defer i1.Unpin()
	defer i2.Unpin()
	if n := m.Snapshot().ResidentNodes; n != 1 {
		t.Fatalf("%d nodes after duplicate insert, want 1", n)
	}
}

func TestPageRunCloneAndTruncate(t *testing.T) {
	run := newRun(2, 4, 8)
	ks, vs := freshRows(t, 2, 10, 8, 100)
	defer releaseAll(ks, vs)
	if err := run.appendRows(ks, vs, 0, 10); err != nil {
		t.Fatal(err)
	}
	if run.tokens != 10 || len(run.pages) != 3 {
		t.Fatalf("run %d tokens over %d pages", run.tokens, len(run.pages))
	}
	tail, err := run.cloneRange(6, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.release()
	gk, gv, rel, err := tail.gatherRange(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	for l := 0; l < 2; l++ {
		want, _ := tensor.CopyRowRange(ks[l], 6, 10)
		if !tensor.AllClose(gk[l], want, 0, 0) {
			t.Fatalf("layer %d clone diverges", l)
		}
		want.Release()
		wantV, _ := tensor.CopyRowRange(vs[l], 6, 10)
		if !tensor.AllClose(gv[l], wantV, 0, 0) {
			t.Fatalf("layer %d clone V diverges", l)
		}
		wantV.Release()
	}
	run.truncate(6)
	if run.tokens != 6 || len(run.pages) != 2 {
		t.Fatalf("after truncate: %d tokens over %d pages", run.tokens, len(run.pages))
	}
	defer run.release()
}
