package tensor

import "testing"

func rowTensor(rows, dim int, base float32) *Tensor {
	t := New(F32, rows, dim)
	d := t.F32()
	for r := 0; r < rows; r++ {
		for c := 0; c < dim; c++ {
			d[r*dim+c] = base + float32(r) + float32(c)/100
		}
	}
	return t
}

func TestCopyRowsAt(t *testing.T) {
	dst := New(F32, 6, 4)
	src := rowTensor(2, 4, 10)
	if err := CopyRowsAt(dst, src, 3); err != nil {
		t.Fatal(err)
	}
	d := dst.F32()
	for c := 0; c < 4; c++ {
		if d[3*4+c] != 10+float32(c)/100 {
			t.Fatalf("row 3 col %d = %v", c, d[3*4+c])
		}
		if d[4*4+c] != 11+float32(c)/100 {
			t.Fatalf("row 4 col %d = %v", c, d[4*4+c])
		}
		if d[2*4+c] != 0 || d[5*4+c] != 0 {
			t.Fatal("rows outside the copied range were touched")
		}
	}
}

func TestCopyRowsAtRejectsBadGeometry(t *testing.T) {
	dst := New(F32, 4, 4)
	if err := CopyRowsAt(dst, New(F32, 2, 3), 0); err == nil {
		t.Fatal("row-size mismatch accepted")
	}
	if err := CopyRowsAt(dst, New(I64, 2, 4), 0); err == nil {
		t.Fatal("dtype mismatch accepted")
	}
	if err := CopyRowsAt(dst, New(F32, 3, 4), 2); err == nil {
		t.Fatal("overflow accepted")
	}
	if err := CopyRowsAt(dst, New(F32, 1, 4), -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestCopyRowRange(t *testing.T) {
	src := rowTensor(5, 3, 0)
	got, err := CopyRowRange(src, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Release()
	if got.Shape()[0] != 3 || got.Shape()[1] != 3 {
		t.Fatalf("shape %v", got.Shape())
	}
	want, _ := CopyRowRange(src, 0, 5)
	defer want.Release()
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if got.F32()[r*3+c] != src.F32()[(r+1)*3+c] {
				t.Fatalf("row %d col %d: %v != %v", r, c, got.F32()[r*3+c], src.F32()[(r+1)*3+c])
			}
		}
	}
	if _, err := CopyRowRange(src, 3, 2); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := CopyRowRange(src, 0, 6); err == nil {
		t.Fatal("overflow range accepted")
	}
}
