package kvcache

import (
	"context"
	"errors"
	"fmt"
	"time"

	"genie/internal/health"
	"genie/internal/lazy"
	"genie/internal/models"
	"genie/internal/nn"
	"genie/internal/obs"
	"genie/internal/runtime"
	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// SplitConfig wires a prefill/decode disaggregated runner: prefill is
// compute-bound (quadratic attention over the prompt), decode is
// bandwidth-bound (weights + KV per token), so the two phases want
// different backends. Only the semantics-aware ΔKV delta — the fresh
// suffix rows — crosses the boundary; a cache-hit prefix is re-sent as a
// dedup-hinted bind that collapses to a 32-byte hash once the decode
// connection has seen it.
type SplitConfig struct {
	Model *models.GPT
	// Prefill executes prompt passes; its KV state is throwaway (nothing
	// is kept resident there).
	Prefill runtime.Endpoint
	// Decode executes decode steps; handed-off KV lives here under the
	// session's scoped keys.
	Decode runtime.Endpoint
	// DecodeCounters, when set, feeds the runner's traffic metrics (point
	// it at the decode connection).
	DecodeCounters *transport.Counters
	// Cache, when set, is the shared prefix cache consulted before
	// prefill. Nil disaggregates without prefix reuse.
	Cache *Manager
	// OnPrefillFailure, when set, is invoked when a prefill execution
	// fails; returning nil retries the prefill exactly once (the chaos
	// recovery hook — lineage failover onto a spare backend slots in
	// here). Nil or a non-nil return surfaces the original error.
	OnPrefillFailure func(error) error
	// Metrics receives the ΔKV handoff series; nil keeps a private
	// registry.
	Metrics *obs.Registry

	// Lanes optionally names a pool of prefill endpoints. When set,
	// Prefill may be nil; each request's primary is the healthiest lane
	// (per Health) or the first lane. Two or more lanes unlock hedging.
	Lanes []PrefillLane
	// Health, when set, ranks lanes per request, derives the adaptive
	// hedge deadline, and is fed every prefill exec's latency/outcome —
	// the same scorer the serving engine and pool consume.
	Health *health.Set
	// HedgePrefill issues the prefill to a second lane when the first
	// has not answered within the adaptive deadline; the first result
	// wins, the loser is cancelled (deliberately poisoning its conn —
	// the fail-slow lane becomes fail-stop and its breaker/health see
	// it), and exactly one result reaches the prefix cache.
	HedgePrefill bool
	// HedgeFloor is the minimum wait before hedging (default 25ms); the
	// adaptive deadline (health.Config.HedgeFactor × the healthiest
	// lane's EWMA) never drops below it.
	HedgeFloor time.Duration
}

// PrefillLane is one named member of the prefill pool.
type PrefillLane struct {
	Name string
	EP   runtime.Endpoint
}

// Split runs prefill and decode on different backends, shipping the ΔKV
// suffix between them.
type Split struct {
	cfg          SplitConfig
	deltaBytes   *obs.Counter
	deltaTokens  *obs.Counter
	hedged       *obs.Counter
	hedgeWins    *obs.Counter
	hedgeCancels *obs.Counter
}

// NewSplit validates the wiring.
func NewSplit(cfg SplitConfig) (*Split, error) {
	if cfg.Model == nil || cfg.Decode == nil || (cfg.Prefill == nil && len(cfg.Lanes) == 0) {
		return nil, fmt.Errorf("kvcache: split needs a model, a decode endpoint, and a prefill endpoint or lanes")
	}
	for _, ln := range cfg.Lanes {
		if ln.Name == "" || ln.EP == nil {
			return nil, fmt.Errorf("kvcache: every prefill lane needs a name and an endpoint")
		}
	}
	if cfg.HedgeFloor <= 0 {
		cfg.HedgeFloor = 25 * time.Millisecond
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Split{
		cfg:         cfg,
		deltaBytes:  reg.Counter("genie_kvcache_split_delta_bytes_total", "KV suffix bytes handed prefill->decode"),
		deltaTokens: reg.Counter("genie_kvcache_split_delta_tokens_total", "KV suffix tokens handed prefill->decode"),
		hedged: reg.Counter("genie_kvcache_hedged_prefills_total",
			"prefills issued to a second lane past the adaptive deadline"),
		hedgeWins: reg.Counter("genie_kvcache_hedge_wins_total",
			"hedged prefills won by the backup lane"),
		hedgeCancels: reg.Counter("genie_kvcache_hedge_cancelled_total",
			"losing hedge execs cancelled in flight"),
	}, nil
}

// Hedged/HedgeWins/HedgeCancelled report hedged-prefill activity.
func (sp *Split) Hedged() int64         { return sp.hedged.Value() }
func (sp *Split) HedgeWins() int64      { return sp.hedgeWins.Value() }
func (sp *Split) HedgeCancelled() int64 { return sp.hedgeCancels.Value() }

// InstallWeights provisions both endpoints with the model weights.
// Callers routing the prefill endpoint through a lineage.TrackedEndpoint
// get replayable provenance for free.
func (sp *Split) InstallWeights() error {
	eps := []runtime.Endpoint{sp.cfg.Decode}
	if sp.cfg.Prefill != nil {
		eps = append(eps, sp.cfg.Prefill)
	}
	for _, ln := range sp.cfg.Lanes {
		eps = append(eps, ln.EP)
	}
	for _, ep := range eps {
		r := &runtime.LLMRunner{Model: sp.cfg.Model, EP: ep}
		if _, err := r.InstallModelWeights(); err != nil {
			return err
		}
	}
	return nil
}

// rankedLanes orders the prefill pool for this request: healthiest
// first when a scorer is wired, configured order otherwise. Without
// named lanes the single Prefill endpoint is the whole pool.
func (sp *Split) rankedLanes() []PrefillLane {
	if len(sp.cfg.Lanes) == 0 {
		return []PrefillLane{{Name: "prefill", EP: sp.cfg.Prefill}}
	}
	if sp.cfg.Health == nil {
		return sp.cfg.Lanes
	}
	names := make([]string, len(sp.cfg.Lanes))
	byName := make(map[string]PrefillLane, len(sp.cfg.Lanes))
	for i, ln := range sp.cfg.Lanes {
		names[i] = ln.Name
		byName[ln.Name] = ln
	}
	ranked := sp.cfg.Health.Healthiest(names)
	out := make([]PrefillLane, 0, len(ranked))
	for _, n := range ranked {
		out = append(out, byName[n])
	}
	return out
}

// execOnLane runs one prefill exec on a lane, threading ctx through
// when the endpoint supports per-call cancellation (transport.Client
// does), and feeds the result to the health scorer. A cancelled exec —
// the losing half of a hedge — is not held against the lane's latency
// EWMA: the duration measures our patience, not the lane.
func (sp *Split) execOnLane(ctx context.Context, ln PrefillLane, ex *transport.Exec) (*transport.ExecOK, error) {
	type ctxExecer interface {
		ExecCtx(context.Context, *transport.Exec) (*transport.ExecOK, error)
	}
	t0 := time.Now()
	var ok *transport.ExecOK
	var err error
	if ec, can := ln.EP.(ctxExecer); can && ctx != nil {
		ok, err = ec.ExecCtx(ctx, ex)
	} else {
		ok, err = ln.EP.Exec(ex)
	}
	if sp.cfg.Health != nil && !errors.Is(err, context.Canceled) {
		sp.cfg.Health.Endpoint(ln.Name).Observe(time.Since(t0), err != nil)
	}
	return ok, err
}

// execPrefill dispatches the phase-1 exec: straight through on a single
// lane, hedged across the two healthiest when enabled. Exactly one
// ExecOK ever comes back, so downstream cache insertion and ΔKV handoff
// see one winner no matter how many lanes raced.
func (sp *Split) execPrefill(ctx context.Context, ex *transport.Exec) (*transport.ExecOK, error) {
	lanes := sp.rankedLanes()
	if !sp.cfg.HedgePrefill || len(lanes) < 2 {
		return sp.execOnLane(ctx, lanes[0], ex)
	}
	return sp.hedgeExec(ctx, lanes[0], lanes[1], ex)
}

// hedgeExec races the primary lane against a backup: the backup
// launches when the primary misses the adaptive deadline (or fails
// outright), the first success wins, and the loser's exec is cancelled
// mid-flight. Cancellation poisons the loser's conn by design — that is
// the fail-slow → fail-stop conversion: a browned-out lane that would
// otherwise stay wedged now fails its next call fast and its breaker
// and health score react. Both workers send to a buffered channel, so
// the loser always runs to completion and nothing leaks.
func (sp *Split) hedgeExec(ctx context.Context, primary, backup PrefillLane, ex *transport.Exec) (*transport.ExecOK, error) {
	if ctx == nil {
		//lint:ignore ctxflow nil-context fallback, not a propagation hole
		ctx = context.Background()
	}
	deadline := sp.cfg.HedgeFloor
	if sp.cfg.Health != nil {
		deadline = sp.cfg.Health.HedgeDeadline(sp.cfg.HedgeFloor)
	}
	type result struct {
		ok     *transport.ExecOK
		err    error
		backup bool
	}
	ch := make(chan result, 2)
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	launch := func(ln PrefillLane, isBackup bool) {
		go func() {
			ok, err := sp.execOnLane(hctx, ln, ex)
			ch <- result{ok, err, isBackup}
		}()
	}
	launch(primary, false)
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	pending, hedgedNow := 1, false
	var firstErr error
	for {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				if r.backup {
					sp.hedgeWins.Inc()
				}
				if pending > 0 {
					// The loser is still in flight: cancel it. The deferred
					// cancel would fire anyway; counting here keeps the
					// metric honest about in-flight cancellations only.
					cancel()
					sp.hedgeCancels.Inc()
				}
				return r.ok, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if !hedgedNow {
				// The primary failed before the deadline: hedge immediately
				// rather than waiting out a timer nobody is racing.
				hedgedNow = true
				pending++
				sp.hedged.Inc()
				launch(backup, true)
				continue
			}
			if pending == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			if !hedgedNow {
				hedgedNow = true
				pending++
				sp.hedged.Inc()
				launch(backup, true)
			}
		}
	}
}

// DeltaBytes reports total KV bytes shipped across the phase boundary —
// by construction exactly suffixTokens × Model.Cfg.KVBytesPerToken().
func (sp *Split) DeltaBytes() int64 { return sp.deltaBytes.Value() }

// DeltaTokens reports total suffix tokens handed off.
func (sp *Split) DeltaTokens() int64 { return sp.deltaTokens.Value() }

// Runner returns the disaggregated LLMRunner. The runner's EP and
// counters point at the decode side (where sessions live); weights must
// already be installed on both endpoints (InstallWeights).
func (sp *Split) Runner() *runtime.LLMRunner {
	return &runtime.LLMRunner{
		Model:           sp.cfg.Model,
		EP:              sp.cfg.Decode,
		Counters:        sp.cfg.DecodeCounters,
		WeightsResident: true,
		NewStrategy: func(_ context.Context, mode runtime.Mode, scope string) (runtime.Strategy, error) {
			if mode != runtime.ModeSemAware {
				return nil, fmt.Errorf("kvcache: split runner supports mode semantics_aware, not %s", mode)
			}
			return &splitSession{sp: sp, scope: scope, nilCaches: nilCaches(sp.cfg.Model)}, nil
		},
	}
}

type splitSession struct {
	sp        *Split
	scope     string
	pin       *Pin
	epoch     uint32
	hist      int
	nilCaches []*nn.KVCache
}

func (s *splitSession) Prefill(ctx context.Context, prompt []int64) (int64, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	sp := s.sp
	cfg := sp.cfg.Model.Cfg

	var (
		pin     *Pin
		prefix  []*nn.KVCache
		release = func() {}
		matched int
		err     error
	)
	if sp.cfg.Cache != nil {
		pin, prefix, release, matched, err = sp.cfg.Cache.Lookup(prompt)
		if err != nil {
			return 0, err
		}
	}
	defer release()

	// Phase 1: prefill on the prefill backend. Nothing is kept resident
	// there — its copy of the KV state is throwaway; we only want the
	// next token and the fresh suffix rows.
	b, plan := buildPrefill(sp.cfg.Model, prompt, matched, prefix)
	ex := &transport.Exec{Graph: b.Graph()}
	for _, n := range b.Graph().Nodes() {
		if n.Op != "input" {
			continue
		}
		data, _ := b.InputData(n.Ref)
		cache := n.Residency == srg.ResidencyStatefulKVCache
		ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Inline: data, Cache: cache})
	}
	ex.Want = append(ex.Want, plan.next)
	for i := range plan.newK {
		ex.Want = append(ex.Want, plan.newK[i], plan.newV[i])
	}
	ok, err := sp.execPrefill(ctx, ex)
	if err != nil && sp.cfg.OnPrefillFailure != nil {
		if herr := sp.cfg.OnPrefillFailure(err); herr == nil {
			ok, err = sp.execPrefill(ctx, ex)
		}
	}
	if err != nil {
		pin.Unpin()
		return 0, err
	}
	suffixK := make([]*tensor.Tensor, cfg.Layers)
	suffixV := make([]*tensor.Tensor, cfg.Layers)
	for i := 0; i < cfg.Layers; i++ {
		suffixK[i], suffixV[i] = ok.Results[plan.newK[i]], ok.Results[plan.newV[i]]
	}

	if sp.cfg.Cache != nil {
		insertPin, ierr := sp.cfg.Cache.Insert(prompt, matched, suffixK, suffixV)
		pin.Unpin()
		if ierr != nil {
			return 0, ierr
		}
		s.pin = insertPin
	}

	// Phase 2: ΔKV handoff. One exec on the decode backend assembles
	// prefix ++ suffix into the session's scoped resident keys. The
	// suffix rows are the only novel content — the analytic per-token KV
	// delta; the prefix bind is dedup-hinted, so once this decode
	// connection has seen a shared prefix it re-transfers as a 32-byte
	// hash.
	hb := lazy.NewBuilder("kvcache.handoff")
	hb.SetModality(srg.ModalityText)
	hx := &transport.Exec{Keep: map[srg.NodeID]string{}}
	var delta int64
	for i := 0; i < cfg.Layers; i++ {
		for _, half := range []struct {
			name   string
			prefix *tensor.Tensor
			suffix *tensor.Tensor
		}{
			{"k", prefixHalf(prefix, i, "k"), suffixK[i]},
			{"v", prefixHalf(prefix, i, "v"), suffixV[i]},
		} {
			parts := make([]lazy.Value, 0, 2)
			if half.prefix != nil {
				pv := hb.Input(fmt.Sprintf("prefix.%d.%s", i, half.name), half.prefix)
				hx.Binds = append(hx.Binds, transport.Binding{
					Ref: fmt.Sprintf("prefix.%d.%s", i, half.name), Inline: half.prefix, Cache: true})
				parts = append(parts, pv)
			}
			sv := hb.Input(fmt.Sprintf("suffix.%d.%s", i, half.name), half.suffix)
			hx.Binds = append(hx.Binds, transport.Binding{
				Ref: fmt.Sprintf("suffix.%d.%s", i, half.name), Inline: half.suffix})
			parts = append(parts, sv)
			full := hb.Concat(0, parts...)
			hb.MarkOutput(full)
			hx.Keep[full.ID()] = s.scope + models.CacheRef(i, half.name)
			delta += int64(half.suffix.NumBytes())
		}
	}
	hx.Graph = hb.Graph()
	hok, err := sp.cfg.Decode.Exec(hx)
	if err != nil {
		return 0, err
	}
	sp.deltaBytes.Add(delta)
	sp.deltaTokens.Add(int64(len(prompt) - matched))
	s.epoch = hok.Epoch
	s.hist = len(prompt)
	return ok.Results[plan.next].I64()[0], nil
}

// prefixHalf extracts one layer-half tensor from the gathered prefix
// (nil on a cache miss or when no cache is configured).
func prefixHalf(prefix []*nn.KVCache, layer int, half string) *tensor.Tensor {
	if prefix == nil {
		return nil
	}
	if half == "k" {
		return prefix[layer].K
	}
	return prefix[layer].V
}

func (s *splitSession) Step(ctx context.Context, tok int64) (int64, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	b, out := s.sp.cfg.Model.BuildDecodeStep(tok, s.hist, s.hist, s.nilCaches)
	ex := &transport.Exec{Graph: b.Graph()}
	for _, n := range b.Graph().Nodes() {
		if n.Op != "input" {
			continue
		}
		if n.Residency == srg.ResidencyStatefulKVCache {
			ex.Binds = append(ex.Binds, transport.Binding{
				Ref: n.Ref, Key: s.scope + n.Ref, Epoch: s.epoch})
			continue
		}
		data, _ := b.InputData(n.Ref)
		ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Inline: data})
	}
	ex.Keep = map[srg.NodeID]string{}
	for i := range out.CacheK {
		ex.Keep[out.CacheK[i]] = s.scope + models.CacheRef(i, "k")
		ex.Keep[out.CacheV[i]] = s.scope + models.CacheRef(i, "v")
	}
	ex.Want = append(ex.Want, out.LastLogits, out.NextToken)
	ok, err := s.sp.cfg.Decode.Exec(ex)
	if err != nil {
		return 0, err
	}
	s.epoch = ok.Epoch
	s.hist++
	return ok.Results[out.NextToken].I64()[0], nil
}

func (s *splitSession) Close() error {
	s.pin.Unpin()
	var first error
	for _, k := range s.ResidentKeys() {
		if err := s.sp.cfg.Decode.Free(k); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ResidentKeys reports the session's decode-side resident cache keys.
func (s *splitSession) ResidentKeys() []string {
	return scopedKeys(s.scope, s.sp.cfg.Model)
}
