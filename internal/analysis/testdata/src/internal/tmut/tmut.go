// Package tmut is genie-lint test fixture data for the
// tensor-immutability analyzer. Its pretend path (genie/internal/tmut)
// is outside the kernel packages, so every backing-store write is a
// finding.
package tmut

import "genie/internal/tensor"

// scribble writes straight through a raw view.
func scribble(t *tensor.Tensor) {
	t.F32()[0] = 1 // want "write into a tensor's backing store"
}

// scribbleViaLocal reaches the store through a view-bound local.
func scribbleViaLocal(t *tensor.Tensor) {
	d := t.I64()
	d[2] = 9 // want "write into a tensor's backing store"
	d[3]++   // want "write into a tensor's backing store"
}

// overwrite clobbers the store wholesale.
func overwrite(t *tensor.Tensor, src []byte) {
	copy(t.Bytes(), src) // want "copy into a tensor's backing store"
}

// overwriteViaLocal is the local-bound form of the same.
func overwriteViaLocal(t *tensor.Tensor, src []byte) {
	b := t.Bytes()
	copy(b, src) // want "copy into a tensor's backing store"
}

// mutateAPI uses the mutating half of the tensor API in library code.
func mutateAPI(t *tensor.Tensor) {
	t.Fill(0)       // want "tensor.Fill mutates a tensor in library code"
	t.SetAt(0, 1.5) // want "tensor.SetAt mutates a tensor in library code"
}

// reads are always fine.
func reads(t *tensor.Tensor, dst []float32) float32 {
	copy(dst, t.F32())
	v := t.F32()[0]
	return v + t.At(1)
}

// freshLocal builds a new tensor from values without touching an
// existing store; construction is not mutation.
func freshLocal(vals []float32) *tensor.Tensor {
	return tensor.FromF32(tensor.Shape{len(vals)}, vals)
}

// ignored carries a justified suppression.
func ignored(t *tensor.Tensor) {
	//lint:ignore tensormut fixture; scratch tensor never escapes this frame
	t.F32()[0] = 3
}
