package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("genie_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter %d, want 5", c.Value())
	}
	// Same name resolves the same cell.
	if r.Counter("genie_test_total", "a counter") != c {
		t.Fatal("re-registration must return the same counter")
	}
	// Distinct labels are distinct series.
	a := r.Counter("genie_kind_total", "", "kind", "exec")
	b := r.Counter("genie_kind_total", "", "kind", "upload")
	if a == b {
		t.Fatal("label sets must separate series")
	}
	g := r.Gauge("genie_depth", "a gauge")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge %d, want 5", g.Value())
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("genie_x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as two types must panic")
		}
	}()
	r.Gauge("genie_x", "")
}

func TestHistogramBucketsSumQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("genie_lat_seconds", "", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	if math.Abs(h.Sum()-5.605) > 1e-9 {
		t.Fatalf("sum %v", h.Sum())
	}
	// Median falls in the (0.01, 0.1] bucket.
	if q := h.Quantile(0.5); q <= 0.01 || q > 0.1 {
		t.Fatalf("p50 %v outside its bucket", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("q0 %v", q)
	}
}

func TestConcurrentObservationUnderContention(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("genie_conc_total", "")
	h := r.Histogram("genie_conc_seconds", "", nil)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Dynamic lookup on every iteration exercises the
				// lock-striped shard table from many goroutines.
				r.Counter("genie_conc_total", "").Inc()
				h.ObserveDuration(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count %d, want %d", h.Count(), workers*per)
	}
	if math.Abs(h.Sum()-workers*per*0.001) > 1e-6 {
		t.Fatalf("histogram sum %v", h.Sum())
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("genie_b_total", "bees", "kind", "exec").Add(3)
	r.Counter("genie_b_total", "bees", "kind", "upload").Add(1)
	r.Gauge("genie_a_depth", "depth").Set(9)
	h := r.Histogram("genie_c_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wantLines := []string{
		"# HELP genie_a_depth depth",
		"# TYPE genie_a_depth gauge",
		"genie_a_depth 9",
		"# TYPE genie_b_total counter",
		`genie_b_total{kind="exec"} 3`,
		`genie_b_total{kind="upload"} 1`,
		"# TYPE genie_c_seconds histogram",
		`genie_c_seconds_bucket{le="0.1"} 1`,
		`genie_c_seconds_bucket{le="1"} 2`,
		`genie_c_seconds_bucket{le="+Inf"} 3`,
		"genie_c_seconds_sum 2.55",
		"genie_c_seconds_count 3",
	}
	for _, w := range wantLines {
		if !strings.Contains(out, w) {
			t.Fatalf("exposition missing %q:\n%s", w, out)
		}
	}
	// Families sorted: a before b before c.
	if strings.Index(out, "genie_a_depth") > strings.Index(out, "genie_b_total") ||
		strings.Index(out, "genie_b_total") > strings.Index(out, "genie_c_seconds") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestWindowQuantiles(t *testing.T) {
	w := NewWindow(4)
	for _, d := range []time.Duration{40, 10, 30, 20, 50} { // 40 evicted
		w.Observe(d)
	}
	if w.Len() != 4 {
		t.Fatalf("window len %d", w.Len())
	}
	qs, max := w.Quantiles(0, 1)
	if qs[0] != 10 || qs[1] != 50 || max != 50 {
		t.Fatalf("quantiles %v max %v", qs, max)
	}
}
