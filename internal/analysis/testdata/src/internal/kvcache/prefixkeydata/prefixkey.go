// Package prefixkeydata is genie-lint fixture data for the KV
// key-discipline analyzer in the prefix-cache plane. Its pretend path
// (genie/internal/kvcache/...) is inside the plan-owner scope — the
// kvcache strategies legitimately place prefix KV on backends — so the
// cross-shard rule stays silent and the scope-prefix rule does the
// talking: a prefix-cache key without a session scope would alias every
// request sharing the prefix onto one resident entry, corrupting decode
// state the moment two sessions extend it differently.
package prefixkeydata

import (
	"genie/internal/models"
	"genie/internal/srg"
	"genie/internal/transport"
)

// handoffScoped keeps the assembled prefix++suffix under the session's
// scoped key: the ΔKV handoff done right.
func handoffScoped(ex *transport.Exec, scope string) {
	ex.Keep[srg.NodeID(1)] = scope + models.CacheRef(0, "k")
}

// handoffBare drops the scope: every split session sharing this decode
// backend would collide on one resident entry.
func handoffBare(ex *transport.Exec) {
	ex.Keep[srg.NodeID(1)] = models.CacheRef(0, "k") // want "bare models.CacheRef with no session-scope prefix"
}

// insertViaLocal hides the unscoped prefix key behind a local binding —
// the shape of the real bug: deriving a cache key from layer geometry
// alone and forgetting the per-session plane.
func insertViaLocal(ex *transport.Exec) {
	key := models.CacheRef(1, "v")
	ex.Keep[srg.NodeID(2)] = key // want "bare models.CacheRef with no session-scope prefix"
}

// stepBind rebinds decode-side resident state by key each step.
func stepBind(ex *transport.Exec, key string) {
	ex.Binds = append(ex.Binds, transport.Binding{Ref: "gpt.kv.0.k", Key: key})
}

// stepBare rebinds without the scope through the helper; flagged at the
// call site via the interprocedural summary.
func stepBare(ex *transport.Exec) {
	stepBind(ex, models.CacheRef(2, "k")) // want "bare models.CacheRef .* through stepBind"
}

// stepScoped is the legitimate per-step rebind.
func stepScoped(ex *transport.Exec, scope string) {
	stepBind(ex, scope+models.CacheRef(2, "k"))
}

// prefixBind ships gathered prefix content inline under a private ref;
// not a CacheRef-derived key, so kvscope has nothing to say.
func prefixBind(ex *transport.Exec) {
	ex.Binds = append(ex.Binds, transport.Binding{Ref: "prefix.0.k", Cache: true})
}
