// Package genie is a framework-layer architecture for network-attached
// AI-accelerator disaggregation, built around the Semantically Rich
// Graph (SRG) — a reproduction of "Lost in Translation: The Search for
// Meaning in Network-Attached AI Accelerator Disaggregation"
// (HotNets '25).
//
// Genie decouples *intent capture* from *execution*: applications write
// ordinary model code against lazy tensors; the frontend defers every
// operation into an SRG annotated with phases, residency, modality, and
// cost hints; a pluggable scheduler turns the SRG into a placement and
// data-movement plan; and backends execute the plan on local or
// network-attached accelerators with remote state addressed by opaque
// handles.
//
// The typical flow:
//
//	b := genie.NewBuilder("my-model")
//	x := b.Input("x", inputTensor)
//	w := b.Param("w", weightTensor)
//	y := b.Softmax(b.MatMul(x, w))
//	b.MarkOutput(y)
//
//	genie.Annotate(b.Graph())                  // infer semantics
//	plan, _ := genie.Schedule(b.Graph(), pool, // place it
//	    genie.SemanticsAware{}, genie.NewCostModel(genie.RDMAProfile))
//
// See the examples/ directory for runnable end-to-end scenarios
// (LLM serving under four disaggregation modes, pipelined CNN inference,
// recommendation-model tiering, lineage-based failure recovery, and
// multi-tenant global scheduling).
package genie

import (
	"math/rand"
	"net"
	"time"

	"genie/internal/backend"
	"genie/internal/cluster"
	"genie/internal/device"
	"genie/internal/exec"
	"genie/internal/frontend"
	"genie/internal/global"
	"genie/internal/lazy"
	"genie/internal/lineage"
	"genie/internal/models"
	"genie/internal/runtime"
	"genie/internal/scheduler"
	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// --- capture (frontend) ---

// Builder captures deferred tensor computation into an SRG.
type Builder = lazy.Builder

// Value is a lazy tensor proxy bound to an SRG node.
type Value = lazy.Value

// NewBuilder starts a capture session for a graph with the given name.
func NewBuilder(name string) *Builder { return lazy.NewBuilder(name) }

// Tensor is the dense tensor type used throughout Genie.
type Tensor = tensor.Tensor

// Shape describes tensor extents, outermost first.
type Shape = tensor.Shape

// DType identifies a tensor element type.
type DType = tensor.DType

// Element types.
const (
	F32 = tensor.F32
	F16 = tensor.F16
	I64 = tensor.I64
	I32 = tensor.I32
	U8  = tensor.U8
)

// NewTensor allocates a zeroed tensor.
func NewTensor(dt DType, shape ...int) *Tensor { return tensor.New(dt, shape...) }

// FromF32 builds an F32 tensor from values.
func FromF32(shape Shape, values []float32) *Tensor { return tensor.FromF32(shape, values) }

// FromI64 builds an I64 tensor from values.
func FromI64(shape Shape, values []int64) *Tensor { return tensor.FromI64(shape, values) }

// --- the SRG ---

// Graph is the Semantically Rich Graph: a declarative DAG of operations
// with the paper's annotation schema.
type Graph = srg.Graph

// Node is one SRG operation.
type Node = srg.Node

// NodeID identifies a node within a graph.
type NodeID = srg.NodeID

// Phase tags execution phases (prefill, decode, cv_stage, …).
type Phase = srg.Phase

// Well-known phases.
const (
	PhaseLLMPrefill = srg.PhaseLLMPrefill
	PhaseLLMDecode  = srg.PhaseLLMDecode
	PhaseCVStage    = srg.PhaseCVStage
	PhaseSparse     = srg.PhaseSparse
	PhaseDense      = srg.PhaseDense
	PhaseFusion     = srg.PhaseFusion
)

// Residency classes for data products.
const (
	ResidencyPersistentWeight    = srg.ResidencyPersistentWeight
	ResidencyEphemeralActivation = srg.ResidencyEphemeralActivation
	ResidencyStatefulKVCache     = srg.ResidencyStatefulKVCache
)

// Annotate runs the standard pattern-recognizer library plus edge passes
// over a captured graph, inferring phases, residency, criticality, and
// producer-consumer rates.
func Annotate(g *Graph) frontend.Report { return frontend.Annotate(g) }

// AnnotatePhase is the explicit developer hook: tag every node under a
// module path with a phase (the paper's genie.annotate_phase).
func AnnotatePhase(g *Graph, modulePrefix string, p Phase) int {
	return frontend.AnnotatePhase(g, modulePrefix, p)
}

// AnnotateResidency overrides residency for a named leaf.
func AnnotateResidency(g *Graph, ref string, r srg.Residency) error {
	return frontend.AnnotateResidency(g, ref, r)
}

// --- cluster & devices ---

// Cluster tracks the accelerator pool, link topology, residency, and
// load.
type Cluster = cluster.State

// Accelerator is one pooled device instance.
type Accelerator = cluster.Accelerator

// AcceleratorID names a pool member.
type AcceleratorID = cluster.AcceleratorID

// Link describes the network path to an accelerator.
type Link = cluster.Link

// DeviceSpec is an accelerator performance envelope.
type DeviceSpec = device.Spec

// Catalogue devices.
var (
	A100    = device.A100
	H100    = device.H100
	A10G    = device.A10G
	CPUHost = device.CPUHost
)

// NewCluster creates an empty pool.
func NewCluster() *Cluster { return cluster.NewState() }

// --- scheduling ---

// Plan is a scheduled execution recipe over an SRG.
type Plan = scheduler.Plan

// Policy maps an annotated SRG and cluster state to a Plan.
type Policy = scheduler.Policy

// Built-in policies spanning the design space of §2.2: semantically
// blind (RoundRobin), load-aware (LeastLoaded), data-movement-aware
// (DataAware), and Genie's semantics-aware policy.
type (
	// RoundRobin spreads ops cyclically (the naive baseline).
	RoundRobin = scheduler.RoundRobin
	// LeastLoaded puts the whole graph on the least-busy device.
	LeastLoaded = scheduler.LeastLoaded
	// DataAware minimizes transfers treating ops as independent.
	DataAware = scheduler.DataAware
	// SemanticsAware applies stateful co-location, CNN pipelining, and
	// dynamic recomputation from SRG annotations.
	SemanticsAware = scheduler.SemanticsAware
)

// CostModel estimates plan latency (compute + transfers + queueing).
type CostModel = scheduler.CostModel

// RPCProfile models transport-stack overhead.
type RPCProfile = scheduler.RPCProfile

// Transport profiles: the paper's measured TensorPipe stack and the
// projected zero-copy RDMA datapath.
var (
	TensorPipeProfile = scheduler.TensorPipeProfile
	RDMAProfile       = scheduler.RDMAProfile
)

// NewCostModel builds a cost model over an RPC profile.
func NewCostModel(rpc RPCProfile) *CostModel { return scheduler.NewCostModel(rpc) }

// Schedule is the paper's scheduler interface: plan = schedule(srg,
// cluster_state, policy).
func Schedule(g *Graph, cs *Cluster, policy Policy, model *CostModel) (*Plan, error) {
	return scheduler.Schedule(g, cs, policy, model)
}

// --- execution ---

// Server is a disaggregated accelerator backend.
type Server = backend.Server

// NewServer creates a backend modeling the given device.
func NewServer(spec DeviceSpec) *Server { return backend.NewServer(spec) }

// Client is the typed RPC surface to one backend.
type Client = transport.Client

// Dial connects to a Genie server.
func Dial(addr string) (*Client, error) {
	conn, err := transport.Dial(addr, nil, nil)
	if err != nil {
		return nil, err
	}
	return transport.NewClient(conn), nil
}

// DialShaped connects with traffic counting and link shaping (emulating
// e.g. the paper's 25 Gbps testbed on loopback).
func DialShaped(addr string, counters *transport.Counters, shaper *transport.Shaper) (*Client, error) {
	conn, err := transport.Dial(addr, counters, shaper)
	if err != nil {
		return nil, err
	}
	return transport.NewClient(conn), nil
}

// Serve answers the Genie protocol on a TCP listener until it closes.
func Serve(s *Server, l net.Listener) error { return s.Listen(l) }

// Counters tracks wire traffic through a connection.
type Counters = transport.Counters

// Shaper emulates link bandwidth/RTT/per-call overhead.
type Shaper = transport.Shaper

// BufferPool is the pinned, network-ready memory pool (§3.4).
type BufferPool = transport.BufferPool

// NewBufferPool creates a pool retaining maxHeldPerClass free buffers
// per size class.
func NewBufferPool(maxHeldPerClass int) *BufferPool {
	return transport.NewBufferPool(maxHeldPerClass)
}

// ExecuteLocal evaluates a captured graph in-process, binding every leaf
// from the builder's registered data, and returns all node values.
func ExecuteLocal(b *Builder) (map[NodeID]*Tensor, error) {
	return exec.Graph(b.Graph(), runtime.BindAll(b))
}

// Mode selects an LLM execution strategy (the §4 evaluation modes).
type Mode = runtime.Mode

// The four evaluation modes.
const (
	ModeLocal    = runtime.ModeLocal
	ModeNaive    = runtime.ModeNaive
	ModeDeltaKV  = runtime.ModeDeltaKV
	ModeSemAware = runtime.ModeSemAware
)

// LLMRunner generates tokens from a GPT model under a chosen mode.
type LLMRunner = runtime.LLMRunner

// GenResult carries generated tokens plus per-phase metrics.
type GenResult = runtime.GenResult

// Metrics aggregates latency, traffic, calls, and GPU busy time.
type Metrics = runtime.Metrics

// --- models ---

// GPTConfig describes a decoder-only transformer; GPTJ6B is the paper's
// model, TinyGPT a laptop-scale one.
type GPTConfig = models.GPTConfig

// Model configurations.
var (
	GPTJ6B  = models.GPTJ6B
	TinyGPT = models.TinyGPT
)

// GPT is a runnable decoder-only transformer.
type GPT = models.GPT

// NewGPTModel initializes a runnable GPT with real weights (use small
// configs; GPT-J-scale accounting works directly on GPTConfig).
func NewGPTModel(rng *rand.Rand, cfg GPTConfig) *GPT { return models.NewGPT(rng, cfg) }

// NewCNNModel initializes a runnable staged CNN.
func NewCNNModel(rng *rand.Rand, cfg models.CNNConfig) *CNN { return models.NewCNN(rng, cfg) }

// NewDLRMModel initializes a runnable recommendation model.
func NewDLRMModel(rng *rand.Rand, cfg models.DLRMConfig) *DLRM { return models.NewDLRM(rng, cfg) }

// CNN, DLRM, MultiModal are the other Table-1 workloads.
type (
	// CNN is a staged convolutional classifier.
	CNN = models.CNN
	// CNNConfig parameterizes a CNN.
	CNNConfig = models.CNNConfig
	// DLRM is a sparse+dense recommendation model.
	DLRM = models.DLRM
	// DLRMConfig parameterizes a DLRM.
	DLRMConfig = models.DLRMConfig
	// DLRMRequest is one recommendation query.
	DLRMRequest = models.DLRMRequest
	// MultiModal fuses vision and text branches.
	MultiModal = models.MultiModal
)

// Small runnable workload configurations.
var (
	TinyCNN  = models.TinyCNN
	TinyDLRM = models.TinyDLRM
)

// --- fault tolerance & global scheduling ---

// LineageManager tracks remote-object provenance and replays lost
// chains after failures (§3.5).
type LineageManager = lineage.Manager

// NewLineageManager creates an empty manager.
func NewLineageManager() *LineageManager { return lineage.NewManager() }

// Coordinator is the semantics-aware global scheduler (§3.6).
type Coordinator = global.Coordinator

// NewCoordinator builds a coordinator over a pool.
func NewCoordinator(cs *Cluster, model *CostModel) *Coordinator {
	return global.NewCoordinator(cs, model)
}

// Submission is one tenant's SRG plus scheduling metadata.
type Submission = global.Submission

// SLO classes.
const (
	SLOInteractive = global.SLOInteractive
	SLOBatch       = global.SLOBatch
)

// --- streaming generation ---

// Token is one streamed generation event from LLMRunner.Stream.
type Token = runtime.Token

// ErrStopped reports a generation loop interrupted by cancellation or an
// OnToken stop request.
var ErrStopped = runtime.ErrStopped

// PlanExecutor realizes a scheduled Plan across multiple live backends:
// per-device segments, boundary activation carries, keep-remote
// directives, and recompute inlining.
type PlanExecutor = runtime.PlanExecutor

// --- graph rewrites (§3.3 prepass extension point) ---

// Rewrite is a semantics-preserving SRG transformation applied before
// placement.
type Rewrite = scheduler.Rewrite

// Built-in rewrites.
type (
	// DeadNodeElimination drops captured-but-unobserved nodes.
	DeadNodeElimination = scheduler.DeadNodeElimination
	// CommonSubexpression merges structurally identical compute nodes.
	CommonSubexpression = scheduler.CommonSubexpression
	// FuseElementwise collapses unary elementwise chains (including the
	// attention scale→mask→softmax epilogue) into single fused kernels.
	FuseElementwise = scheduler.FuseElementwise
)

// ApplyRewrites runs rewrite passes in order.
func ApplyRewrites(g *Graph, passes ...Rewrite) (*Graph, map[string]int) {
	return scheduler.ApplyRewrites(g, passes...)
}

// --- learned semantics (§5 "evolving semantic lexicon") ---

// LearnedRecognizer classifies novel graphs by nearest-centroid over
// structural features, learned from labeled example graphs.
type LearnedRecognizer = frontend.LearnedRecognizer

// --- runtime hint adaptation (§3.3 extension point) ---

// AdaptHints probes a live endpoint and refreshes the cluster's RTT model.
func AdaptHints(cs *Cluster, id AcceleratorID, p scheduler.Prober, samples int) error {
	return scheduler.AdaptHints(cs, id, p, samples)
}

// ObserveTransfer folds a measured transfer into the link's congestion
// estimate.
func ObserveTransfer(cs *Cluster, id AcceleratorID, n int64, elapsed time.Duration) error {
	return scheduler.ObserveTransfer(cs, id, n, elapsed)
}
