// Package exec interprets SRG nodes against concrete tensors. It is the
// kernel dispatcher shared by every execution site: the client's local
// device, the remote backend server, and the lineage replayer all run the
// same interpreter, which is what makes SRG subgraphs replayable anywhere
// (§3.5's determinism requirement).
package exec

import (
	"fmt"
	"strconv"
	"strings"

	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/tensor/ops"
)

// Node executes a single SRG node given its input tensors in argument
// order. Leaf ops ("param", "input") are not executable here — binding
// them to data is the caller's job.
func Node(n *srg.Node, in []*tensor.Tensor) (*tensor.Tensor, error) {
	need := func(k int) error {
		if len(in) != k {
			return fmt.Errorf("exec: %s needs %d inputs, got %d", n.Op, k, len(in))
		}
		return nil
	}
	switch n.Op {
	case "param", "input":
		return nil, fmt.Errorf("exec: leaf op %q must be bound, not executed", n.Op)
	case "matmul":
		if err := need(2); err != nil {
			return nil, err
		}
		return ops.MatMul(in[0], in[1])
	case "matmul_t":
		if err := need(2); err != nil {
			return nil, err
		}
		return ops.MatMulT(in[0], in[1])
	case "add":
		if err := need(2); err != nil {
			return nil, err
		}
		return ops.Add(in[0], in[1])
	case "sub":
		if err := need(2); err != nil {
			return nil, err
		}
		return ops.Sub(in[0], in[1])
	case "mul":
		if err := need(2); err != nil {
			return nil, err
		}
		return ops.Mul(in[0], in[1])
	case "scale":
		if err := need(1); err != nil {
			return nil, err
		}
		s, err := attrFloat(n, "s")
		if err != nil {
			return nil, err
		}
		return ops.Scale(in[0], float32(s)), nil
	case "causal_mask":
		if err := need(1); err != nil {
			return nil, err
		}
		offset, err := attrInt(n, "offset")
		if err != nil {
			return nil, err
		}
		return ops.CausalMask(in[0], offset)
	case "softmax":
		if err := need(1); err != nil {
			return nil, err
		}
		return ops.Softmax(in[0]), nil
	case "rope":
		if err := need(1); err != nil {
			return nil, err
		}
		start, err := attrInt(n, "start")
		if err != nil {
			return nil, err
		}
		base, err := attrFloat(n, "base")
		if err != nil {
			return nil, err
		}
		return ops.RoPE(in[0], start, base)
	case "gelu":
		if err := need(1); err != nil {
			return nil, err
		}
		return ops.GELU(in[0]), nil
	case "relu":
		if err := need(1); err != nil {
			return nil, err
		}
		return ops.ReLU(in[0]), nil
	case "layernorm":
		if err := need(3); err != nil {
			return nil, err
		}
		eps, err := attrFloat(n, "eps")
		if err != nil {
			return nil, err
		}
		return ops.LayerNorm(in[0], in[1], in[2], float32(eps))
	case "embedding":
		if err := need(2); err != nil {
			return nil, err
		}
		return ops.Embedding(in[0], in[1])
	case "embedding_bag":
		if err := need(2); err != nil {
			return nil, err
		}
		offsets, err := attrInts(n, "offsets")
		if err != nil {
			return nil, err
		}
		if in[1].DType() != tensor.I64 {
			return nil, fmt.Errorf("exec: embedding_bag ids must be i64")
		}
		return ops.EmbeddingBag(in[0], in[1].I64(), offsets)
	case "concat":
		if len(in) < 1 {
			return nil, fmt.Errorf("exec: concat needs inputs")
		}
		dim, err := attrInt(n, "dim")
		if err != nil {
			return nil, err
		}
		return ops.Concat(dim, in...)
	case "slice_rows":
		if err := need(1); err != nil {
			return nil, err
		}
		start, err := attrInt(n, "start")
		if err != nil {
			return nil, err
		}
		end, err := attrInt(n, "end")
		if err != nil {
			return nil, err
		}
		return ops.SliceRows(in[0], start, end)
	case "transpose2d":
		if err := need(1); err != nil {
			return nil, err
		}
		return ops.Transpose2D(in[0])
	case "reshape":
		if err := need(1); err != nil {
			return nil, err
		}
		shape, err := attrInts(n, "shape")
		if err != nil {
			return nil, err
		}
		return in[0].Reshape(shape...)
	case "argmax_last":
		if err := need(1); err != nil {
			return nil, err
		}
		id, err := ops.ArgmaxLastRow(in[0])
		if err != nil {
			return nil, err
		}
		return tensor.FromI64(tensor.Shape{1}, []int64{id}), nil
	case "conv2d":
		if err := need(2); err != nil {
			return nil, err
		}
		stride, err := attrInt(n, "stride")
		if err != nil {
			return nil, err
		}
		pad, err := attrInt(n, "pad")
		if err != nil {
			return nil, err
		}
		return ops.Conv2D(in[0], in[1], stride, pad)
	case "maxpool2d":
		if err := need(1); err != nil {
			return nil, err
		}
		k, err := attrInt(n, "k")
		if err != nil {
			return nil, err
		}
		return ops.MaxPool2D(in[0], k)
	case "meanpool":
		if err := need(1); err != nil {
			return nil, err
		}
		return ops.MeanPoolAll(in[0])
	case "sum":
		if err := need(1); err != nil {
			return nil, err
		}
		return ops.Sum(in[0]), nil
	case "fused":
		if err := need(1); err != nil {
			return nil, err
		}
		return execFused(n, in[0])
	}
	return nil, fmt.Errorf("exec: unknown op %q", n.Op)
}

func attrFloat(n *srg.Node, key string) (float64, error) {
	v, ok := n.Attrs[key]
	if !ok {
		return 0, fmt.Errorf("exec: %s missing attr %q", n.Op, key)
	}
	return strconv.ParseFloat(v, 64)
}

func attrInt(n *srg.Node, key string) (int, error) {
	v, ok := n.Attrs[key]
	if !ok {
		return 0, fmt.Errorf("exec: %s missing attr %q", n.Op, key)
	}
	return strconv.Atoi(v)
}

func attrInts(n *srg.Node, key string) ([]int, error) {
	v, ok := n.Attrs[key]
	if !ok {
		return nil, fmt.Errorf("exec: %s missing attr %q", n.Op, key)
	}
	parts := strings.Split(v, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		x, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("exec: attr %q: %v", key, err)
		}
		out[i] = x
	}
	return out, nil
}

// execFused interprets a fused elementwise micro-program: the node's
// "stages" attribute lists unary stages ("scale:<s>", "gelu", "relu",
// "softmax") applied in order. Fused nodes are produced by the
// scheduler's FuseElementwise rewrite; executing the stages sequentially
// here is semantically identical to the unfused chain (each stage is the
// same kernel), while a real accelerator backend would emit one kernel.
func execFused(n *srg.Node, x *tensor.Tensor) (*tensor.Tensor, error) {
	attr, ok := n.Attrs["stages"]
	if !ok || attr == "" {
		return nil, fmt.Errorf("exec: fused node missing stages attr")
	}
	cur := x
	for _, part := range strings.Split(attr, "|") {
		switch {
		case strings.HasPrefix(part, "scale:"):
			v, err := strconv.ParseFloat(part[len("scale:"):], 64)
			if err != nil {
				return nil, fmt.Errorf("exec: fused scale arg: %v", err)
			}
			cur = ops.Scale(cur, float32(v))
		case strings.HasPrefix(part, "causal_mask:"):
			off, err := strconv.Atoi(part[len("causal_mask:"):])
			if err != nil {
				return nil, fmt.Errorf("exec: fused causal_mask arg: %v", err)
			}
			cur, err = ops.CausalMask(cur, off)
			if err != nil {
				return nil, err
			}
		case part == "gelu":
			cur = ops.GELU(cur)
		case part == "relu":
			cur = ops.ReLU(cur)
		case part == "softmax":
			cur = ops.Softmax(cur)
		default:
			return nil, fmt.Errorf("exec: unknown fused stage %q", part)
		}
	}
	return cur, nil
}

// Binder resolves a leaf node's data by ref.
type Binder func(op, ref string) (*tensor.Tensor, error)

// Graph evaluates an entire SRG in topological order, binding leaves via
// bind, and returns every node's value. It is the reference evaluator
// used by tests and the lineage replayer; production paths execute plans
// node by node so they can interleave transfers.
func Graph(g *srg.Graph, bind Binder) (map[srg.NodeID]*tensor.Tensor, error) {
	vals := make(map[srg.NodeID]*tensor.Tensor, g.Len())
	for _, id := range g.TopoOrder() {
		n := g.Node(id)
		switch n.Op {
		case "param", "input":
			t, err := bind(n.Op, n.Ref)
			if err != nil {
				return nil, fmt.Errorf("exec: bind %s %q: %w", n.Op, n.Ref, err)
			}
			vals[id] = t
		default:
			in := make([]*tensor.Tensor, len(n.Inputs))
			for i, dep := range n.Inputs {
				in[i] = vals[dep]
			}
			t, err := Node(n, in)
			if err != nil {
				return nil, fmt.Errorf("exec: node %d: %w", id, err)
			}
			vals[id] = t
		}
	}
	return vals, nil
}
