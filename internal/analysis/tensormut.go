package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TensormutAnalyzer protects the lazy-capture layer's central
// assumption: a materialized tensor is immutable. The SRG records
// tensors by identity; the scheduler dedupes uploads by fingerprint;
// the backend caches residency by key+epoch. All three are sound only
// if nobody scribbles on a tensor's backing store after capture —
// a mutation outside the kernel packages silently desynchronizes the
// local bytes from their remote replica and from every SRG node that
// captured the old value.
//
// Scope: everywhere in the module except genie/internal/tensor (the
// owner of the representation), genie/internal/nn (the kernels, which
// write into freshly allocated outputs), and genie/internal/quant (the
// raw-speed tier's quantizers, which fill the int8/f16 tensors they
// just created — the same freshly-allocated-output discipline as nn).
// Flagged:
//
//   - element stores through a raw view: t.F32()[i] = v, and the same
//     through a local bound to a view (d := t.F32(); d[i] = v)
//   - copy() or clear() with a raw view (or view-bound local) as dst
//   - calls to the mutating API — SetAt, Fill, RandN — in library code
//     under genie/internal/ (binaries and examples legitimately
//     initialize tensors they just allocated)
//
// Reads through views are fine; Clone() then mutate is the sanctioned
// escape hatch.
var TensormutAnalyzer = &Analyzer{
	Name: "tensormut",
	Doc:  "materialized tensors are immutable outside the tensor/nn kernel packages",
	AppliesTo: func(scope string) bool {
		return !hasPrefixPath(scope, "genie/internal/tensor") &&
			!hasPrefixPath(scope, "genie/internal/nn") &&
			!hasPrefixPath(scope, "genie/internal/quant")
	},
	Run: runTensormut,
}

// viewMethods are the accessors exposing the raw backing store. I8 and
// Scales joined with the raw-speed tier: a write through either
// desynchronizes a quantized weight from its content hash and remote
// replica just like an F32 store.
var viewMethods = map[string]bool{
	"F32": true, "F16": true, "I64": true, "I32": true, "U8": true, "Bytes": true,
	"I8": true, "Scales": true,
}

// mutMethods are the mutating halves of the tensor API.
var mutMethods = map[string]bool{"SetAt": true, "Fill": true, "RandN": true}

func runTensormut(pass *Pass) {
	internal := hasPrefixPath(pass.ScopePath, "genie/internal")
	funcBodies(pass.Files, func(name string, body *ast.BlockStmt) {
		tainted := make(map[types.Object]bool) // locals bound to raw views
		walkIgnoringFuncLits(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if pos, ok := viewStore(pass, tainted, lhs); ok {
						pass.Reportf(pos, "write into a tensor's backing store outside the kernel packages: Clone() before mutating")
					}
				}
				// Taint after checking LHS so `d[0] = ...; d := t.F32()`
				// ordering is irrelevant within the walk.
				taintFromAssign(pass, tainted, n)
			case *ast.IncDecStmt:
				if pos, ok := viewStore(pass, tainted, n.X); ok {
					pass.Reportf(pos, "write into a tensor's backing store outside the kernel packages: Clone() before mutating")
				}
			case *ast.CallExpr:
				checkBuiltinDst(pass, tainted, n)
				if internal {
					if m := tensorMethod(pass, n); mutMethods[m] {
						pass.Reportf(n.Pos(), "tensor.%s mutates a tensor in library code: materialized tensors are immutable, Clone() first", m)
					}
				}
			}
			return true
		})
	})
}

// viewStore reports whether lhs stores through a raw tensor view,
// returning the position to report.
func viewStore(pass *Pass, tainted map[types.Object]bool, lhs ast.Expr) (token.Pos, bool) {
	idx, ok := unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return 0, false
	}
	if isRawView(pass, tainted, idx.X) {
		return lhs.Pos(), true
	}
	return 0, false
}

// isRawView reports whether e is a raw-view call or a local bound to
// one.
func isRawView(pass *Pass, tainted map[types.Object]bool, e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.CallExpr:
		return viewMethods[tensorMethod(pass, e)]
	case *ast.Ident:
		return tainted[pass.Info.Uses[e]]
	}
	return false
}

// taintFromAssign marks locals assigned directly from raw-view calls.
func taintFromAssign(pass *Pass, tainted map[types.Object]bool, n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok || !viewMethods[tensorMethod(pass, call)] {
			continue
		}
		id, ok := n.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			tainted[obj] = true
		} else if obj := pass.Info.Uses[id]; obj != nil {
			tainted[obj] = true
		}
	}
}

// checkBuiltinDst flags copy/clear whose destination is a raw view.
func checkBuiltinDst(pass *Pass, tainted map[types.Object]bool, call *ast.CallExpr) {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return
	}
	if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || (b.Name() != "copy" && b.Name() != "clear") {
		return
	}
	if isRawView(pass, tainted, call.Args[0]) {
		pass.Reportf(call.Pos(), "%s into a tensor's backing store outside the kernel packages: Clone() before mutating", id.Name)
	}
}

// tensorMethod returns the method name when call is a method call on
// *genie/internal/tensor.Tensor, else "".
func tensorMethod(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || funcPkgPath(fn) != "genie/internal/tensor" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return fn.Name()
}
