package chaos

import (
	"net"
	"testing"
	"time"
)

// sinkConn swallows writes and serves reads instantly, so brownout
// delays are the only time a test measures.
type sinkConn struct{ net.Conn }

func (sinkConn) Write(b []byte) (int, error) { return len(b), nil }
func (sinkConn) Read(b []byte) (int, error)  { return len(b), nil }
func (sinkConn) Close() error                { return nil }

// TestBrownoutPauseAndCreepSchedule: the pause fires on exactly every
// Nth op, creep charges every op, and the whole schedule is a pure
// function of the op sequence — two identical runs inject identically.
func TestBrownoutPauseAndCreepSchedule(t *testing.T) {
	run := func() map[string]int64 {
		p := NewPlan(7, Config{
			PauseEvery: 3, PauseDur: time.Microsecond,
			CreepStep: time.Microsecond, CreepMax: 3 * time.Microsecond,
		})
		fc := p.WrapConn(sinkConn{})
		buf := make([]byte, 8)
		for i := 0; i < 12; i++ {
			if _, err := fc.Write(buf); err != nil {
				t.Fatal(err)
			}
		}
		return p.Injected()
	}
	got := run()
	if got["pause"] != 4 {
		t.Errorf("pauses = %d over 12 ops with PauseEvery 3, want 4", got["pause"])
	}
	if got["creep"] != 12 {
		t.Errorf("creeps = %d over 12 ops, want one per op", got["creep"])
	}
	again := run()
	for k, v := range got {
		if again[k] != v {
			t.Errorf("second run injected %s=%d, first %d — brownout schedule not deterministic", k, again[k], v)
		}
	}
}

// TestBrownoutThrottlePaces: a throttled conn takes at least the
// serialization delay of the bytes moved, and a disarmed plan charges
// nothing.
func TestBrownoutThrottlePaces(t *testing.T) {
	p := NewPlan(7, Config{ThrottleBytesPerSec: 1 << 20}) // 1 MiB/s
	fc := p.WrapConn(sinkConn{})
	buf := make([]byte, 16<<10) // 16 KiB → ≥ ~15.6ms at 1 MiB/s
	t0 := time.Now()
	if _, err := fc.Write(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 10*time.Millisecond {
		t.Errorf("throttled 16KiB write took %v, want >= ~15ms at 1MiB/s", d)
	}
	if p.Injected()["throttle"] != 1 {
		t.Errorf("throttle count = %d, want 1", p.Injected()["throttle"])
	}

	p.SetActive(false)
	t0 = time.Now()
	if _, err := fc.Write(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d > 5*time.Millisecond {
		t.Errorf("disarmed throttle still slept %v", d)
	}
}

// TestBrownoutLeavesFaultStreamAligned: arming a brownout must not
// consume PRNG draws — the probabilistic fault sequence with and
// without a brownout is bit-identical under one seed.
func TestBrownoutLeavesFaultStreamAligned(t *testing.T) {
	seq := func(cfg Config) map[string]int64 {
		p := NewPlan(11, cfg)
		fc := p.WrapConn(sinkConn{})
		buf := make([]byte, 4)
		for i := 0; i < 100; i++ {
			_, _ = fc.Write(buf)
		}
		inj := p.Injected()
		delete(inj, "pause")
		delete(inj, "creep")
		delete(inj, "throttle")
		return inj
	}
	base := Config{DropWriteProb: 0.1, DelayProb: 0.1, Delay: time.Microsecond}
	withBrownout := base
	withBrownout.PauseEvery = 2
	withBrownout.PauseDur = time.Microsecond
	withBrownout.CreepStep = time.Microsecond
	withBrownout.CreepMax = 2 * time.Microsecond
	a, b := seq(base), seq(withBrownout)
	if len(a) != len(b) {
		t.Fatalf("probabilistic fault kinds differ: %v vs %v", a, b)
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("fault stream diverged once brownout armed: %s=%d vs %d (%v / %v)", k, v, b[k], a, b)
		}
	}
}
