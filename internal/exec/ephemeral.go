package exec

import (
	"fmt"

	"genie/internal/srg"
	"genie/internal/tensor"
)

// GraphEphemeral evaluates g like Graph but with activation lifetime
// tracking: a compute node's value that is not in keep is released back
// to the tensor scratch arena as soon as its last consumer has
// executed, so one decode step's intermediates become the next
// kernel's output buffers instead of fresh heap allocations. Only the
// keep values are returned.
//
// Safety rules, in order of appearance:
//   - leaf values (param/input) are never released — they are owned by
//     the binder (weight stores, KV caches, inline RPC payloads);
//   - keep values are never released — they are the caller's results;
//   - values on either side of a "reshape" are never released —
//     Reshape shares its input's backing store, so releasing one side
//     would recycle a buffer the other side still reads.
//
// Node IDs are dense topological positions (srg builders assign them in
// insertion order), so every lifetime structure here is a flat slice —
// this runs once per decode step and must not out-allocate the buffers
// it recycles.
func GraphEphemeral(g *srg.Graph, bind Binder, keep map[srg.NodeID]bool) (map[srg.NodeID]*tensor.Tensor, error) {
	n := g.Len()
	for id := range keep {
		if g.Node(id) == nil {
			return nil, fmt.Errorf("exec: keep of unknown node %d", id)
		}
	}

	// dieAt[id] is the topo position of id's final consumer (its own
	// position when nothing consumes it). One backing array serves all
	// three int32 tables.
	backing := make([]int32, 3*n+1)
	dieAt, offs, cursor := backing[:n:n], backing[n:2*n+1:2*n+1], backing[2*n+1:]
	pinned := make([]bool, n)
	for id := 0; id < n; id++ {
		nd := g.Node(srg.NodeID(id))
		if nd.Op == "param" || nd.Op == "input" {
			pinned[id] = true
		}
		if nd.Op == "reshape" {
			pinned[id] = true
			for _, in := range nd.Inputs {
				pinned[in] = true
			}
		}
		dieAt[id] = int32(id)
		for _, in := range nd.Inputs {
			dieAt[in] = int32(id)
		}
	}

	// deaths in CSR form: ids dying at position p are
	// flat[offs[p]:offs[p+1]].
	for id := 0; id < n; id++ {
		if !pinned[id] && !keep[srg.NodeID(id)] {
			offs[dieAt[id]+1]++
		}
	}
	for p := 0; p < n; p++ {
		offs[p+1] += offs[p]
	}
	flat := make([]srg.NodeID, offs[n])
	copy(cursor, offs[:n])
	for id := 0; id < n; id++ {
		if !pinned[id] && !keep[srg.NodeID(id)] {
			p := dieAt[id]
			flat[cursor[p]] = srg.NodeID(id)
			cursor[p]++
		}
	}

	vals := make([]*tensor.Tensor, n)
	for p := 0; p < n; p++ {
		id := srg.NodeID(p)
		nd := g.Node(id)
		switch nd.Op {
		case "param", "input":
			t, err := bind(nd.Op, nd.Ref)
			if err != nil {
				return nil, fmt.Errorf("exec: bind %s %q: %w", nd.Op, nd.Ref, err)
			}
			vals[p] = t
		default:
			in := make([]*tensor.Tensor, len(nd.Inputs))
			for i, dep := range nd.Inputs {
				in[i] = vals[dep]
			}
			t, err := Node(nd, in)
			if err != nil {
				return nil, fmt.Errorf("exec: node %d: %w", id, err)
			}
			vals[p] = t
		}
		for _, dead := range flat[offs[p]:offs[p+1]] {
			vals[dead].Release()
			vals[dead] = nil
		}
	}

	out := make(map[srg.NodeID]*tensor.Tensor, len(keep))
	for id := range keep {
		out[id] = vals[id]
	}
	return out, nil
}
