package transport

import (
	"bytes"
	"testing"

	"genie/internal/srg"
	"genie/internal/tensor"
)

// Fuzz targets: decoders must never panic or over-allocate on arbitrary
// bytes — they are the server's exposure surface. Run with
// `go test -fuzz=FuzzDecodeExec ./internal/transport` for deep fuzzing;
// the seed corpus runs as part of the normal test suite.

func execSeed(t testing.TB) []byte {
	g := srg.New("seed")
	in := g.MustAdd(&srg.Node{Op: "input", Ref: "x",
		Output: srg.TensorMeta{Shape: []int{2}}})
	out := g.MustAdd(&srg.Node{Op: "relu", Inputs: []srg.NodeID{in},
		Output: srg.TensorMeta{Shape: []int{2}}})
	payload, err := EncodeExec(&Exec{
		Graph: g,
		Binds: []Binding{
			{Ref: "x", Inline: tensor.FromF32(tensor.Shape{2}, []float32{1, 2})},
			{Ref: "w", Key: "k", Epoch: 3},
		},
		Keep: map[srg.NodeID]string{out: "y"},
		Want: []srg.NodeID{out},
	})
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

func FuzzDecodeExec(f *testing.F) {
	f.Add(execSeed(f))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		x, err := DecodeExec(data)
		if err != nil {
			return
		}
		// A successfully decoded Exec must re-encode.
		if _, err := EncodeExec(x); err != nil {
			t.Fatalf("decoded Exec fails to re-encode: %v", err)
		}
	})
}

func FuzzDecodeUpload(f *testing.F) {
	f.Add(EncodeUpload(&Upload{Key: "k", Data: tensor.FromF32(tensor.Shape{1}, []float32{1})}))
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeUpload(data)
		if err != nil {
			return
		}
		back, err := DecodeUpload(EncodeUpload(u))
		if err != nil {
			t.Fatalf("re-encode round trip failed: %v", err)
		}
		if back.Key != u.Key || !bytes.Equal(back.Data.Bytes(), u.Data.Bytes()) {
			t.Fatal("upload round trip not stable")
		}
	})
}

func FuzzDecodeExecOK(f *testing.F) {
	f.Add(EncodeExecOK(&ExecOK{
		Results: map[srg.NodeID]*tensor.Tensor{1: tensor.New(tensor.F32, 2)},
		Kept:    map[string]int64{"k": 8},
		Epoch:   2, GPUTimeNs: 5, GraphFP: "ab",
	}))
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeExecOK(data)
		if err != nil {
			return
		}
		if _, err := DecodeExecOK(EncodeExecOK(a)); err != nil {
			t.Fatalf("re-encode round trip failed: %v", err)
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, MsgPing, []byte("hello"))
	f.Add(buf.Bytes())
	f.Add([]byte{5, 0, 0, 0, 1, 'a', 'b', 'c', 'd', 'e'})
	// Oversize length prefixes: just past maxFrame, and the maximum u32.
	f.Add([]byte{0x01, 0x00, 0x00, 0x40, byte(MsgExec)})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, byte(MsgExec), 0, 0})
	// Traced frame with a corrupt (truncated) envelope: the type byte
	// carries envFlag but fewer than 16 envelope bytes follow.
	f.Add([]byte{0, 0, 0, 0, byte(MsgPing) | envFlag, 1, 2, 3})
	// Traced frame whose envelope is intact but whose payload is short.
	{
		var env bytes.Buffer
		_ = WriteFrameEnv(&env, MsgExec, Envelope{Trace: 7, Span: 9}, []byte("payload"))
		full := env.Bytes()
		f.Add(full)
		f.Add(full[:len(full)-3])
	}
	// envFlag over an invalid base type: must pass through as an unknown
	// type, not stall reading an envelope that was never sent.
	f.Add([]byte{0, 0, 0, 0, 0xfa})
	f.Fuzz(func(t *testing.T, data []byte) {
		mt, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			// Errors are fine; what matters is that malformed frames are
			// typed correctly so conns know to close. An oversize length
			// prefix must be a FrameError, not a silent allocation.
			if len(data) >= 4 && bytes.Equal(data[:4], []byte{0xff, 0xff, 0xff, 0xff}) && !IsFrameError(err) {
				t.Fatalf("oversize frame returned untyped error %T: %v", err, err)
			}
			return
		}
		// A read frame re-serializes to a readable frame.
		var out bytes.Buffer
		if err := WriteFrame(&out, mt, payload); err != nil {
			t.Fatalf("re-write failed: %v", err)
		}
		mt2, p2, err := ReadFrame(&out)
		if err != nil || mt2 != mt || !bytes.Equal(p2, payload) {
			t.Fatal("frame round trip unstable")
		}
	})
}
