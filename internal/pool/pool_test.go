package pool

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"testing"

	"genie/internal/backend"
	"genie/internal/chaos"
	"genie/internal/cluster"
	"genie/internal/device"
	"genie/internal/metrics"
	"genie/internal/models"
	"genie/internal/runtime"
	"genie/internal/transport"
)

var testPrompt = []int64{3, 14, 15, 9, 2, 6}

// testLink is cheap and symmetric; the cost model still sees real
// transfer terms.
var testLink = cluster.Link{Bandwidth: 3.125e9, RPCOverhead: 0}

func testGPT() *models.GPT {
	return models.NewGPT(rand.New(rand.NewSource(5)), models.TinyGPT)
}

// refTokens is the single-backend ModeLocal ground truth every sharded
// run must match bit-for-bit.
func refTokens(t *testing.T, steps int) []int64 {
	t.Helper()
	r := &runtime.LLMRunner{Model: testGPT()}
	res, err := r.Generate(runtime.ModeLocal, testPrompt, steps)
	if err != nil {
		t.Fatal(err)
	}
	return res.Tokens
}

// poolBackend is one in-process backend reachable over a net.Pipe,
// optionally routed through a chaos plan.
type poolBackend struct {
	srv          *backend.Server
	ep           runtime.Endpoint
	cconn, sconn *transport.Conn
}

func newPoolBackend(plan *chaos.Plan) *poolBackend {
	rawC, rawS := net.Pipe()
	var clientSide net.Conn = rawC
	if plan != nil {
		clientSide = plan.WrapConn(rawC)
	}
	cconn := transport.NewConn(clientSide, nil, nil)
	sconn := transport.NewConn(rawS, nil, nil)
	srv := backend.NewServer(device.A100)
	go func() { _ = srv.Serve(sconn) }()
	return &poolBackend{srv: srv, ep: transport.NewClient(cconn), cconn: cconn, sconn: sconn}
}

func (pb *poolBackend) stop() {
	_ = pb.cconn.Close()
	_ = pb.sconn.Close()
}

// smallSpec gives a member num/den of the model's total weight bytes —
// the lever that forces multi-member sharding.
func smallSpec(m *models.GPT, num, den int64) device.Spec {
	s := device.A100
	s.MemBytes = m.Cfg.WeightBytes() * num / den
	return s
}

func TestBuildPlanStrategies(t *testing.T) {
	m := testGPT()
	two := []Candidate{
		{Name: "a", Spec: smallSpec(m, 2, 3), Link: testLink},
		{Name: "b", Spec: smallSpec(m, 2, 3), Link: testLink},
	}

	t.Run("memory splits when nothing fits alone", func(t *testing.T) {
		p, err := BuildPlan(m, two, StrategyMemory, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(p.Members()); got != 2 {
			t.Fatalf("memory plan uses %d members, want 2", got)
		}
		for name, w := range p.Weights {
			if lim := smallSpec(m, 2, 3).MemBytes; w > lim {
				t.Errorf("member %s over budget: %d > %d", name, w, lim)
			}
		}
		if p.CutEdges == 0 || p.CutBytes == 0 {
			t.Errorf("2-way plan has no cut: edges=%d bytes=%d", p.CutEdges, p.CutBytes)
		}
	})

	t.Run("memory packs onto one member when it fits", func(t *testing.T) {
		big := []Candidate{
			{Name: "a", Spec: device.A100, Link: testLink},
			{Name: "b", Spec: device.A100, Link: testLink},
		}
		p, err := BuildPlan(m, big, StrategyMemory, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(p.Members()); got != 1 {
			t.Fatalf("memory plan uses %d members, want 1 (model fits)", got)
		}
		if p.CutEdges != 0 {
			t.Errorf("single-member plan has %d cut edges", p.CutEdges)
		}
	})

	t.Run("pipeline spreads contiguous stages", func(t *testing.T) {
		p, err := BuildPlan(m, two, StrategyPipeline, 1)
		if err != nil {
			t.Fatal(err)
		}
		shards := p.Shards()
		if len(shards) != 2 {
			t.Fatalf("pipeline shards = %d, want 2", len(shards))
		}
		if shards[0].Member == shards[1].Member {
			t.Error("pipeline stages share a member")
		}
	})

	t.Run("tensor interleaves round-robin", func(t *testing.T) {
		p, err := BuildPlan(m, two, StrategyTensor, 1)
		if err != nil {
			t.Fatal(err)
		}
		if p.Owners[0] == p.Owners[1] {
			t.Errorf("tensor owners = %v, want alternating", p.Owners)
		}
	})

	t.Run("auto picks a feasible plan", func(t *testing.T) {
		p, err := BuildPlan(m, two, StrategyAuto, 1)
		if err != nil {
			t.Fatal(err)
		}
		if p.Strategy != StrategyAuto {
			t.Errorf("auto plan stamped %v", p.Strategy)
		}
		if p.Estimate <= 0 {
			t.Error("auto plan has no cost estimate")
		}
	})

	t.Run("infeasible pool errors", func(t *testing.T) {
		tiny := []Candidate{{Name: "a", Spec: smallSpec(m, 1, 10), Link: testLink}}
		if _, err := BuildPlan(m, tiny, StrategyAuto, 1); err == nil {
			t.Fatal("want error for pool smaller than the model")
		}
	})
}

// join builds a backend, joins it, and returns it for teardown.
func join(t *testing.T, m *Manager, name string, spec device.Spec, plan *chaos.Plan) *poolBackend {
	t.Helper()
	pb := newPoolBackend(plan)
	if err := m.Join(name, pb.ep, spec, testLink); err != nil {
		t.Fatalf("join %s: %v", name, err)
	}
	return pb
}

// generate drives a scoped session through prefill + steps.
func generate(t *testing.T, m *Manager, scope string, steps int) []int64 {
	t.Helper()
	s, err := m.Runner().NewScopedSessionCtx(context.Background(), runtime.ModeSemAware, scope)
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	defer func() { _ = s.Close() }()
	var out []int64
	tok, err := s.Prefill(testPrompt)
	if err != nil {
		t.Fatalf("prefill: %v", err)
	}
	out = append(out, tok)
	for len(out) < steps {
		if tok, err = s.Step(); err != nil {
			t.Fatalf("step %d: %v", len(out), err)
		}
		out = append(out, tok)
	}
	return out
}

// TestShardedParityTwoMembers: a model too large for either member
// serves across both with bit-identical output to the local reference —
// the tentpole acceptance criterion.
func TestShardedParityTwoMembers(t *testing.T) {
	gpt := testGPT()
	want := refTokens(t, 6)

	mgr, err := NewManager(Config{Model: gpt})
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec(gpt, 2, 3)
	b0 := join(t, mgr, "m0", spec, nil)
	defer b0.stop()
	b1 := join(t, mgr, "m1", spec, nil)
	defer b1.stop()

	plan := mgr.Plan()
	if plan == nil {
		t.Fatal("no plan after two joins")
	}
	if got := len(plan.Members()); got != 2 {
		t.Fatalf("plan uses %d members, want 2 (weights %d B, member cap %d B)",
			got, gpt.Cfg.WeightBytes(), spec.MemBytes)
	}

	got := generate(t, mgr, "req1/", 6)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("sharded tokens %v != local reference %v", got, want)
	}
	st := mgr.Status()
	if st.CrossShardBytes == 0 {
		t.Error("no cross-shard activation bytes counted")
	}
	if st.SegmentExecs == 0 {
		t.Error("no segment execs counted")
	}
}

// TestLeaveMidDecodeParity: a shard owner leaves voluntarily between
// decode steps; the in-flight session finishes on the repaired plan
// with byte-identical output.
func TestLeaveMidDecodeParity(t *testing.T) {
	gpt := testGPT()
	want := refTokens(t, 6)

	mgr, err := NewManager(Config{Model: gpt})
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec(gpt, 2, 3)
	b0 := join(t, mgr, "m0", spec, nil)
	defer b0.stop()
	b1 := join(t, mgr, "m1", spec, nil)
	defer b1.stop()
	// Hot spare: big enough to absorb either member's whole shard.
	b2 := join(t, mgr, "m2", spec, nil)
	defer b2.stop()

	s, err := mgr.Runner().NewScopedSessionCtx(context.Background(), runtime.ModeSemAware, "req1/")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	var got []int64
	tok, err := s.Prefill(testPrompt)
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, tok)
	for i := 0; i < 2; i++ {
		if tok, err = s.Step(); err != nil {
			t.Fatal(err)
		}
		got = append(got, tok)
	}

	// A shard owner departs mid-decode.
	victim := mgr.Plan().Owners[0]
	verBefore := mgr.Plan().Version
	if err := mgr.Leave(victim); err != nil {
		t.Fatalf("leave %s: %v", victim, err)
	}
	plan := mgr.Plan()
	if plan == nil {
		t.Fatal("no plan after leave")
	}
	if plan.Version <= verBefore {
		t.Errorf("plan version %d not bumped past %d", plan.Version, verBefore)
	}
	if ownerIn(plan.Owners, victim) {
		t.Fatalf("departed %s still owns layers: %v", victim, plan.Owners)
	}

	for len(got) < 6 {
		if tok, err = s.Step(); err != nil {
			t.Fatalf("post-leave step: %v", err)
		}
		got = append(got, tok)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("tokens across migration %v != reference %v", got, want)
	}
	st := mgr.Status()
	if st.MigratedKeys == 0 {
		t.Error("leave migrated no keys (weights + KV should replay)")
	}
	if st.Rebuilds == 0 {
		t.Error("no rebuild counted")
	}
}

// TestCrashMidDecodeRepair: a chaos-injected backend crash surfaces as
// a segment failure; the session reports it, the pool evicts and
// re-places onto the spare, and the stream completes bit-identically.
func TestCrashMidDecodeRepair(t *testing.T) {
	gpt := testGPT()
	want := refTokens(t, 6)

	mgr, err := NewManager(Config{Model: gpt})
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec(gpt, 2, 3)
	b0 := join(t, mgr, "m0", spec, nil)
	defer b0.stop()
	b1 := join(t, mgr, "m1", spec, nil)
	defer b1.stop()
	b2 := join(t, mgr, "m2", spec, nil)
	defer b2.stop()

	// m0 crashes on its 3rd exec: prefill segment, one decode segment,
	// then loss mid-decode.
	cp := chaos.NewPlan(7, chaos.Config{CrashExecAt: 3})
	b0.srv.SetExecHook(cp.ExecHook(b0.srv.Crash))

	got := generate(t, mgr, "req1/", 6)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("tokens across crash %v != reference %v", got, want)
	}
	if n := cp.Injected()["crash_exec"]; n != 1 {
		t.Fatalf("chaos injected %d crashes, want 1", n)
	}
	st := mgr.Status()
	if st.MemberFailures == 0 {
		t.Error("no member failure counted")
	}
	if len(st.Members) != 2 {
		t.Errorf("pool still lists %d members, want 2 after eviction", len(st.Members))
	}
}

// TestMembershipChurnSoak: joins, leaves, chaos conn kills, and
// re-joins interleaved with generations; the pool must never leak
// goroutines and must serve correctly once membership stabilizes.
func TestMembershipChurnSoak(t *testing.T) {
	snap := metrics.SnapGoroutines()
	gpt := testGPT()
	want := refTokens(t, 4)

	func() {
		mgr, err := NewManager(Config{Model: gpt, Strategy: StrategyPipeline})
		if err != nil {
			t.Fatal(err)
		}
		spec := smallSpec(gpt, 2, 3)
		var backends []*poolBackend
		defer func() {
			for _, pb := range backends {
				pb.stop()
			}
		}()

		cp := chaos.NewPlan(11, chaos.Config{KillProb: 0.05})
		cp.SetActive(false)
		add := func(name string, chaotic bool) {
			var wrapped *chaos.Plan
			if chaotic {
				wrapped = cp
			}
			pb := newPoolBackend(wrapped)
			backends = append(backends, pb)
			if err := mgr.Join(name, pb.ep, spec, testLink); err != nil {
				t.Fatalf("join %s: %v", name, err)
			}
		}

		add("m0", true)
		add("m1", true)
		add("m2", false)

		got := generate(t, mgr, "warm/", 4)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("pre-churn tokens %v != %v", got, want)
		}

		// Churn phase: conn kills active, members come and go.
		// Generations here may fail (the pool can transiently lack
		// capacity); what matters is that nothing wedges or leaks.
		cp.SetActive(true)
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("churn%d", i)
			add(name, true)
			s, err := mgr.Runner().NewScopedSessionCtx(
				context.Background(), runtime.ModeSemAware, fmt.Sprintf("soak%d/", i))
			if err == nil {
				if _, err := s.Prefill(testPrompt); err == nil {
					_, _ = s.Step()
				}
				_ = s.Close()
			}
			_ = mgr.Leave(name)
		}
		cp.SetActive(false)

		// Stabilize: fresh healthy members join; any chaos-killed member
		// still in the pool is shed by the session-failure path during
		// the final generations.
		add("f0", false)
		add("f1", false)
		var final []int64
		var ferr error
		for attempt := 0; attempt < 6; attempt++ {
			final, ferr = tryGenerate(mgr, fmt.Sprintf("final%d/", attempt), 4)
			if ferr == nil {
				break
			}
		}
		if ferr != nil {
			t.Fatalf("pool never recovered after churn: %v", ferr)
		}
		if fmt.Sprint(final) != fmt.Sprint(want) {
			t.Fatalf("post-churn tokens %v != %v", final, want)
		}
	}()

	snap.Check(t)
}

// tryGenerate is generate without the test fatality, for soak phases
// where failures are expected.
func tryGenerate(m *Manager, scope string, steps int) ([]int64, error) {
	s, err := m.Runner().NewScopedSessionCtx(context.Background(), runtime.ModeSemAware, scope)
	if err != nil {
		return nil, err
	}
	defer func() { _ = s.Close() }()
	var out []int64
	tok, err := s.Prefill(testPrompt)
	if err != nil {
		return nil, err
	}
	out = append(out, tok)
	for len(out) < steps {
		if tok, err = s.Step(); err != nil {
			return nil, err
		}
		out = append(out, tok)
	}
	return out, nil
}

// TestJoinAfterLeaveSameName: a departed name can re-join with a fresh
// backend (regression for stale cluster/lineage residue).
func TestJoinAfterLeaveSameName(t *testing.T) {
	gpt := testGPT()
	mgr, err := NewManager(Config{Model: gpt})
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec(gpt, 2, 3)
	b0 := join(t, mgr, "m0", spec, nil)
	defer b0.stop()
	b1 := join(t, mgr, "m1", spec, nil)
	defer b1.stop()
	b2 := join(t, mgr, "m2", spec, nil)
	defer b2.stop()

	if err := mgr.Leave("m0"); err != nil {
		t.Fatal(err)
	}
	b0b := join(t, mgr, "m0", spec, nil) // same name, new incarnation
	defer b0b.stop()

	want := refTokens(t, 4)
	got := generate(t, mgr, "req1/", 4)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("tokens after re-join %v != %v", got, want)
	}
}
