package runtime

import (
	"fmt"
	"time"

	"genie/internal/models"
	"genie/internal/nn"
	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// GenResult is the outcome of one generation run.
type GenResult struct {
	// Tokens are the generated token ids (length = requested steps).
	Tokens []int64
	// Prefill and Decode carry per-phase metrics, reported separately as
	// in Table 2.
	Prefill Metrics
	Decode  Metrics
}

// LLMRunner generates tokens from a GPT model under a chosen
// disaggregation mode. The same runner produces bit-identical token
// sequences in every mode (greedy decoding over deterministic kernels),
// which is the correctness check the cost-only simulation cannot give.
type LLMRunner struct {
	Model *models.GPT
	// EP is the remote accelerator (nil is allowed for ModeLocal).
	EP Endpoint
	// Counters, when set, measures wire traffic (point it at the
	// endpoint's connection counters).
	Counters *transport.Counters
	// OnToken, when set, observes each generated token as its decode
	// step completes; returning false stops generation (the Stream API's
	// cancellation hook).
	OnToken func(token int64) bool
}

// Generate runs prompt prefill plus steps decode iterations.
func (r *LLMRunner) Generate(mode Mode, prompt []int64, steps int) (*GenResult, error) {
	if len(prompt) == 0 || steps < 0 {
		return nil, fmt.Errorf("runtime: empty prompt or negative steps")
	}
	switch mode {
	case ModeLocal:
		return r.generateLocal(prompt, steps)
	case ModeNaive:
		return r.generateNaive(prompt, steps)
	case ModeDeltaKV:
		return r.generateDeltaKV(prompt, steps)
	case ModeSemAware:
		return r.generateSemAware(prompt, steps)
	}
	return nil, fmt.Errorf("runtime: unknown mode %d", mode)
}

func (r *LLMRunner) snapshot() (int64, int64) {
	if r.Counters == nil {
		return 0, 0
	}
	sent, recv, calls := r.Counters.Snapshot()
	return sent + recv, calls
}

// measure wraps a phase and fills its metrics from wall clock, counters,
// and accumulated GPU time.
func (r *LLMRunner) measure(m *Metrics, gpu *time.Duration, fn func() error) error {
	b0, c0 := r.snapshot()
	g0 := *gpu
	start := time.Now()
	err := fn()
	m.Wall += time.Since(start)
	b1, c1 := r.snapshot()
	m.NetBytes += b1 - b0
	m.RPCCalls += c1 - c0
	m.GPUBusy += *gpu - g0
	return err
}

// --- Local (upper bound) ---

func (r *LLMRunner) generateLocal(prompt []int64, steps int) (*GenResult, error) {
	res := &GenResult{}
	var gpu time.Duration
	caches := emptyCaches(r.Model)
	var next int64

	err := r.measure(&res.Prefill, &gpu, func() error {
		b, out := r.Model.BuildPrefill(prompt)
		vals, err := RunLocal(b)
		if err != nil {
			return err
		}
		for i := range caches {
			caches[i].Append(vals[int32(out.CacheK[i])], vals[int32(out.CacheV[i])])
		}
		gpu += modelGPUTime(b)
		next = vals[int32(out.NextToken)].I64()[0]
		return nil
	})
	if err != nil {
		return nil, err
	}

	hist := len(prompt)
	for s := 0; s < steps; s++ {
		res.Tokens = append(res.Tokens, next)
		if err := r.emit(next); err != nil {
			return res, err
		}
		tok := next
		err := r.measure(&res.Decode, &gpu, func() error {
			b, out := r.Model.BuildDecodeStep(tok, hist, hist, caches)
			vals, err := RunLocal(b)
			if err != nil {
				return err
			}
			for i := range caches {
				// The appended concat holds the full updated cache;
				// replace rather than append to stay exact.
				caches[i].K = vals[int32(out.CacheK[i])]
				caches[i].V = vals[int32(out.CacheV[i])]
			}
			gpu += modelGPUTime(b)
			next = vals[int32(out.NextToken)].I64()[0]
			hist++
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// modelGPUTime accounts local kernel time with the same device model the
// backend uses (the client's GPU in Local mode is the same A100).
func modelGPUTime(b interface {
	Graph() *srg.Graph
}) time.Duration {
	// Local mode models the client machine owning the accelerator; use
	// the A100 spec (matching the paper's local baseline).
	var busy time.Duration
	for _, n := range b.Graph().Nodes() {
		if n.Op == "param" || n.Op == "input" {
			continue
		}
		busy += localSpec.KernelTime(n.Cost.FLOPs, n.Cost.Bytes)
	}
	return busy
}

// --- Naive (semantics-blind) ---

// generateNaive re-uploads every weight on every remote call and keeps
// nothing resident: each decode step replays the full forward pass over
// the whole token history.
func (r *LLMRunner) generateNaive(prompt []int64, steps int) (*GenResult, error) {
	if r.EP == nil {
		return nil, fmt.Errorf("runtime: naive mode needs an endpoint")
	}
	res := &GenResult{}
	var gpu time.Duration
	history := append([]int64(nil), prompt...)
	var next int64

	call := func() error {
		b, out := r.Model.BuildPrefill(history)
		x := &transport.Exec{Graph: b.Graph()}
		// Blind mode: every leaf inline, weights included.
		for _, n := range b.Graph().Nodes() {
			switch n.Op {
			case "param":
				data, _ := b.ParamData(n.Ref)
				x.Binds = append(x.Binds, transport.Binding{Ref: n.Ref, Inline: data})
			case "input":
				data, _ := b.InputData(n.Ref)
				x.Binds = append(x.Binds, transport.Binding{Ref: n.Ref, Inline: data})
			}
		}
		// A blind RPC library materializes all declared outputs back to
		// the caller: the full logits matrix and the next token.
		x.Want = []srg.NodeID{out.Logits, out.NextToken}
		ok, err := r.EP.Exec(x)
		if err != nil {
			return err
		}
		gpu += time.Duration(ok.GPUTimeNs)
		next = ok.Results[out.NextToken].I64()[0]
		return nil
	}

	if err := r.measure(&res.Prefill, &gpu, call); err != nil {
		return nil, err
	}
	for s := 0; s < steps; s++ {
		res.Tokens = append(res.Tokens, next)
		if err := r.emit(next); err != nil {
			return res, err
		}
		history = append(history, next)
		if err := r.measure(&res.Decode, &gpu, call); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// --- ΔKV (semantics-blind with transport-level caching) ---

// generateDeltaKV keeps weights and per-layer caches resident (the
// transport's content cache) but dispatches the model the way a blind
// runtime sees it: one RPC per module (embedding, each block, head), and
// every call's outputs — activations and fresh KV rows, the "delta
// slice" — are shipped back to the client because the library cannot
// know the client will never read them.
func (r *LLMRunner) generateDeltaKV(prompt []int64, steps int) (*GenResult, error) {
	if r.EP == nil {
		return nil, fmt.Errorf("runtime: delta_kv mode needs an endpoint")
	}
	res := &GenResult{}
	var gpu time.Duration

	// One-time provisioning: weights remain remote (not counted in phase
	// traffic, exactly as the paper's setup pre-installs the model).
	if err := r.installAllWeights(); err != nil {
		return nil, err
	}

	var x *tensor.Tensor // current activation at the client
	var next int64
	histLen := 0

	// embedCall runs the embedding module remotely (the CPU client holds
	// no weights) and materializes the activation home.
	embedCall := func(tokens []int64, startPos int) error {
		eb, embID := r.Model.BuildEmbedStep(tokens, startPos)
		ex := &transport.Exec{Graph: eb.Graph()}
		for _, n := range eb.Graph().Nodes() {
			if n.Op == "input" {
				data, _ := eb.InputData(n.Ref)
				ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Inline: data})
			}
		}
		ex.Want = []srg.NodeID{embID}
		ok, err := r.EP.Exec(ex)
		if err != nil {
			return err
		}
		gpu += time.Duration(ok.GPUTimeNs)
		x = ok.Results[embID]
		return nil
	}

	// layerCall runs one block remotely. histLen 0 = prefill (no cache);
	// otherwise the cache binds by key. Either way the updated cache is
	// kept remotely AND the delta rows come back to the client.
	layerCall := func(layer, hist int) error {
		b, lo := r.Model.BuildLayerStep(layer, x, nil, hist)
		ex := &transport.Exec{Graph: b.Graph()}
		xt, _ := b.InputData("gpt.x")
		ex.Binds = append(ex.Binds, transport.Binding{Ref: "gpt.x", Inline: xt})
		kKey, vKey := models.CacheRef(layer, "k"), models.CacheRef(layer, "v")
		ex.Keep = map[srg.NodeID]string{}
		if hist > 0 {
			ex.Binds = append(ex.Binds,
				transport.Binding{Ref: kKey, Key: kKey},
				transport.Binding{Ref: vKey, Key: vKey})
			ex.Keep[lo.AppendedK] = kKey
			ex.Keep[lo.AppendedV] = vKey
		} else {
			ex.Keep[lo.NewK] = kKey
			ex.Keep[lo.NewV] = vKey
		}
		ex.Want = []srg.NodeID{lo.Out, lo.NewK, lo.NewV}
		ok, err := r.EP.Exec(ex)
		if err != nil {
			return err
		}
		gpu += time.Duration(ok.GPUTimeNs)
		x = ok.Results[lo.Out]
		return nil
	}

	// headCall runs the final norm + lm head remotely; the blind library
	// materializes the full logits matrix home along with the argmax.
	headCall := func() error {
		hb, logitsID, nextID := r.Model.BuildHeadStep(x)
		hx := &transport.Exec{Graph: hb.Graph()}
		xt, _ := hb.InputData("gpt.x")
		hx.Binds = append(hx.Binds, transport.Binding{Ref: "gpt.x", Inline: xt})
		hx.Want = []srg.NodeID{logitsID, nextID}
		hok, err := r.EP.Exec(hx)
		if err != nil {
			return err
		}
		gpu += time.Duration(hok.GPUTimeNs)
		next = hok.Results[nextID].I64()[0]
		return nil
	}

	err := r.measure(&res.Prefill, &gpu, func() error {
		if err := embedCall(prompt, 0); err != nil {
			return err
		}
		for layer := range r.Model.Blocks {
			if err := layerCall(layer, 0); err != nil {
				return err
			}
		}
		if err := headCall(); err != nil {
			return err
		}
		histLen = len(prompt)
		return nil
	})
	if err != nil {
		return nil, err
	}

	for s := 0; s < steps; s++ {
		res.Tokens = append(res.Tokens, next)
		if err := r.emit(next); err != nil {
			return res, err
		}
		tok := next
		err := r.measure(&res.Decode, &gpu, func() error {
			if err := embedCall([]int64{tok}, histLen); err != nil {
				return err
			}
			for layer := range r.Model.Blocks {
				if err := layerCall(layer, histLen); err != nil {
					return err
				}
			}
			if err := headCall(); err != nil {
				return err
			}
			histLen++
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// --- Semantics-Aware (Genie) ---

// generateSemAware executes each phase as one fused RPC: weights and
// caches stay remote under stable keys; only the prompt/token go up and
// only the final logits row + next token come down.
func (r *LLMRunner) generateSemAware(prompt []int64, steps int) (*GenResult, error) {
	if r.EP == nil {
		return nil, fmt.Errorf("runtime: semantics_aware mode needs an endpoint")
	}
	res := &GenResult{}
	var gpu time.Duration
	if err := r.installAllWeights(); err != nil {
		return nil, err
	}

	var next int64
	var epoch uint32
	histLen := 0

	err := r.measure(&res.Prefill, &gpu, func() error {
		b, out := r.Model.BuildPrefill(prompt)
		ex := &transport.Exec{Graph: b.Graph()}
		for _, n := range b.Graph().Nodes() {
			if n.Op == "input" {
				data, _ := b.InputData(n.Ref)
				ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Inline: data})
			}
		}
		ex.Keep = map[srg.NodeID]string{}
		for i := range out.CacheK {
			ex.Keep[out.CacheK[i]] = models.CacheRef(i, "k")
			ex.Keep[out.CacheV[i]] = models.CacheRef(i, "v")
		}
		ex.Want = []srg.NodeID{out.LastLogits, out.NextToken}
		ok, err := r.EP.Exec(ex)
		if err != nil {
			return err
		}
		gpu += time.Duration(ok.GPUTimeNs)
		epoch = ok.Epoch
		next = ok.Results[out.NextToken].I64()[0]
		histLen = len(prompt)
		return nil
	})
	if err != nil {
		return nil, err
	}

	nilCaches := emptyCaches(r.Model)
	for s := 0; s < steps; s++ {
		res.Tokens = append(res.Tokens, next)
		if err := r.emit(next); err != nil {
			return res, err
		}
		tok := next
		err := r.measure(&res.Decode, &gpu, func() error {
			b, out := r.Model.BuildDecodeStep(tok, histLen, histLen, nilCaches)
			ex := &transport.Exec{Graph: b.Graph()}
			for _, n := range b.Graph().Nodes() {
				if n.Op != "input" {
					continue
				}
				if n.Residency == srg.ResidencyStatefulKVCache {
					// Remote cache by handle: the tiny-handle round trip
					// of §4's Semantics-Aware mode.
					ex.Binds = append(ex.Binds, transport.Binding{
						Ref: n.Ref, Key: n.Ref, Epoch: epoch})
					continue
				}
				data, _ := b.InputData(n.Ref)
				ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Inline: data})
			}
			ex.Keep = map[srg.NodeID]string{}
			for i := range out.CacheK {
				ex.Keep[out.CacheK[i]] = models.CacheRef(i, "k")
				ex.Keep[out.CacheV[i]] = models.CacheRef(i, "v")
			}
			ex.Want = []srg.NodeID{out.LastLogits, out.NextToken}
			ok, err := r.EP.Exec(ex)
			if err != nil {
				return err
			}
			gpu += time.Duration(ok.GPUTimeNs)
			epoch = ok.Epoch
			next = ok.Results[out.NextToken].I64()[0]
			histLen++
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

func (r *LLMRunner) installAllWeights() error {
	// Capture one throwaway prefill to enumerate params.
	b, _ := r.Model.BuildPrefill([]int64{0})
	_, err := InstallWeights(r.EP, b)
	return err
}

func emptyCaches(m *models.GPT) []*nn.KVCache {
	caches := make([]*nn.KVCache, m.Cfg.Layers)
	for i := range caches {
		caches[i] = &nn.KVCache{}
	}
	return caches
}
