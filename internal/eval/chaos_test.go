package eval

import (
	"context"
	"testing"
	"time"
)

// TestChaosServingRecovers drives the fault-tolerance benchmark at a
// small scale: the faulted run must still complete every request (the
// crash re-queues work to the survivor), and the no-fault baseline must
// be clean.
func TestChaosServingRecovers(t *testing.T) {
	cfg := DefaultChaosServingConfig()
	cfg.CrashExecAt = 3
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	r, err := RunChaosServing(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Baseline.Completed != int64(cfg.Requests) {
		t.Errorf("baseline completed %d/%d", r.Baseline.Completed, cfg.Requests)
	}
	if r.Faulted.Completed+r.Unavailable != int64(cfg.Requests) {
		t.Errorf("faulted run lost requests: completed %d + unavailable %d != %d",
			r.Faulted.Completed, r.Unavailable, cfg.Requests)
	}
	if r.Faulted.Completed == 0 {
		t.Error("no request survived the crash")
	}
	if r.CrashAt <= 0 {
		t.Error("crash never fired")
	}
	if r.Injected["crash_exec"] != 1 {
		t.Errorf("injected = %v, want one crash_exec", r.Injected)
	}
}
