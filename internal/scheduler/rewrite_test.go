package scheduler

import (
	"fmt"
	"math/rand"
	"testing"

	"genie/internal/exec"
	"genie/internal/lazy"
	"genie/internal/models"
	"genie/internal/srg"
	"genie/internal/tensor"
)

func evalGraph(t *testing.T, g *srg.Graph, b *lazy.Builder) map[srg.NodeID]*tensor.Tensor {
	t.Helper()
	vals, err := exec.Graph(g, func(op, ref string) (*tensor.Tensor, error) {
		if op == "param" {
			if tt, ok := b.ParamData(ref); ok {
				return tt, nil
			}
		} else if tt, ok := b.InputData(ref); ok {
			return tt, nil
		}
		return nil, fmt.Errorf("no data for %s %q", op, ref)
	})
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

func TestDeadNodeEliminationRemovesUnobserved(t *testing.T) {
	b := lazy.NewBuilder("dne")
	x := b.Input("x", tensor.FromF32(tensor.Shape{2}, []float32{1, -1}))
	live := b.ReLU(x)
	b.MarkOutput(live)
	dead := b.GELU(x) // captured, never read
	deadder := b.Scale(dead, 2)
	_ = deadder

	before := b.Graph().Len()
	g2, removed := DeadNodeElimination{}.Apply(b.Graph())
	if removed != 2 {
		t.Errorf("removed %d nodes, want 2", removed)
	}
	if g2.Len() != before-2 {
		t.Errorf("graph %d -> %d nodes", before, g2.Len())
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	// The surviving output still computes correctly.
	vals := evalGraph(t, g2, b)
	var out *tensor.Tensor
	for _, n := range g2.Nodes() {
		if n.Op == "relu" {
			out = vals[n.ID]
		}
	}
	if out == nil || out.F32()[0] != 1 || out.F32()[1] != 0 {
		t.Errorf("rewritten output wrong: %v", out)
	}
}

func TestDeadNodeEliminationKeepsStatefulProducts(t *testing.T) {
	b := lazy.NewBuilder("kv")
	cache := b.StatefulInput("kv", tensor.New(tensor.F32, 2, 4))
	delta := b.Input("delta", tensor.New(tensor.F32, 1, 4))
	appended := b.Concat(0, cache, delta)
	b.AnnotateStateful(appended, "kv")
	// No MarkOutput: the append's only purpose is remote state.
	_, removed := DeadNodeElimination{}.Apply(b.Graph())
	if removed != 0 {
		t.Errorf("stateful append eliminated (%d removed)", removed)
	}
}

func TestCSEMergesDuplicateComputation(t *testing.T) {
	b := lazy.NewBuilder("cse")
	x := b.Input("x", tensor.FromF32(tensor.Shape{3}, []float32{1, 2, 3}))
	a1 := b.Scale(x, 2)
	a2 := b.Scale(x, 2) // identical
	y := b.Add(a1, a2)
	b.MarkOutput(y)

	g2, merged := CommonSubexpression{}.Apply(b.Graph())
	if merged != 1 {
		t.Fatalf("merged %d, want 1", merged)
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	// Result unchanged: add(2x, 2x) = 4x.
	vals := evalGraph(t, g2, b)
	var out *tensor.Tensor
	for _, n := range g2.Nodes() {
		if n.Op == "add" {
			out = vals[n.ID]
		}
	}
	if out == nil || out.F32()[2] != 12 {
		t.Errorf("CSE changed semantics: %v", out)
	}
}

func TestCSEDoesNotMergeDifferentAttrs(t *testing.T) {
	b := lazy.NewBuilder("cse2")
	x := b.Input("x", tensor.New(tensor.F32, 2))
	b.MarkOutput(b.Add(b.Scale(x, 2), b.Scale(x, 3)))
	_, merged := CommonSubexpression{}.Apply(b.Graph())
	if merged != 0 {
		t.Errorf("merged %d nodes with different attrs", merged)
	}
}

func TestCSEChainsThroughAliases(t *testing.T) {
	// Duplicate subtrees two levels deep must fully merge.
	b := lazy.NewBuilder("cse3")
	x := b.Input("x", tensor.New(tensor.F32, 2))
	l1 := b.ReLU(b.Scale(x, 2))
	l2 := b.ReLU(b.Scale(x, 2))
	b.MarkOutput(b.Add(l1, l2))
	g2, merged := CommonSubexpression{}.Apply(b.Graph())
	if merged != 2 {
		t.Errorf("merged %d, want 2 (scale + relu)", merged)
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRewritePipelineOnRealModel(t *testing.T) {
	// The full prepass must preserve a GPT prefill's next-token output.
	rng := rand.New(rand.NewSource(12))
	m := models.NewGPT(rng, models.TinyGPT)
	bld, out := m.BuildPrefill([]int64{5, 9, 2})

	valsBefore := evalGraph(t, bld.Graph(), bld)
	wantNext := valsBefore[out.NextToken].I64()[0]

	g2, counts := ApplyRewrites(bld.Graph(), DefaultRewrites()...)
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	t.Logf("rewrites: %v (graph %d -> %d nodes)", counts, bld.Graph().Len(), g2.Len())

	valsAfter := evalGraph(t, g2, bld)
	var gotNext int64 = -1
	for _, n := range g2.Nodes() {
		if n.Op == "argmax_last" {
			gotNext = valsAfter[n.ID].I64()[0]
		}
	}
	if gotNext != wantNext {
		t.Errorf("rewritten prefill predicts %d, want %d", gotNext, wantNext)
	}
}

func TestRewrittenGraphStillSchedulable(t *testing.T) {
	cs := pool(t, 2)
	g := cnnGraph(t)
	g2, _ := ApplyRewrites(g, DefaultRewrites()...)
	if _, err := Schedule(g2, cs, SemanticsAware{}, NewCostModel(RDMAProfile)); err != nil {
		t.Fatal(err)
	}
}

func TestRewritePreservesEdgeAnnotations(t *testing.T) {
	b := lazy.NewBuilder("ann")
	x := b.Input("x", tensor.New(tensor.F32, 4, 8))
	y := b.ReLU(x)
	b.MarkOutput(y)
	g := b.Graph()
	g.SetEdgeRate(y.ID(), 0, 0.5)
	g.SetEdgeCritical(y.ID(), 0, true)

	g2, _ := DeadNodeElimination{}.Apply(g)
	found := false
	for _, e := range g2.Edges() {
		if e.Rate == 0.5 && e.Critical {
			found = true
		}
	}
	if !found {
		t.Error("edge annotations lost in rewrite")
	}
}

func TestFuseElementwiseChain(t *testing.T) {
	b := lazy.NewBuilder("fuse")
	x := b.Input("x", tensor.FromF32(tensor.Shape{1, 4}, []float32{-1, 0, 1, 2}))
	h := b.Scale(x, 2)
	h = b.GELU(h)
	h = b.ReLU(h)
	y := b.Add(h, x) // add is not fusible: chain ends before it
	b.MarkOutput(y)

	before := b.Graph().Len()
	g2, fused := FuseElementwise{}.Apply(b.Graph())
	if fused != 3 {
		t.Fatalf("fused %d nodes, want 3", fused)
	}
	if g2.Len() != before-2 { // 3 nodes -> 1 fused node
		t.Errorf("graph %d -> %d nodes", before, g2.Len())
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	// The fused program is recorded in order.
	var fusedNode *srg.Node
	for _, n := range g2.Nodes() {
		if n.Op == "fused" {
			fusedNode = n
		}
	}
	if fusedNode == nil || fusedNode.Attrs["stages"] != "scale:2|gelu|relu" {
		t.Fatalf("fused node %+v", fusedNode)
	}
	// Semantics preserved end to end.
	valsBefore := evalGraph(t, b.Graph(), b)
	valsAfter := evalGraph(t, g2, b)
	var got, want *tensor.Tensor
	for _, n := range g2.Nodes() {
		if n.Op == "add" {
			got = valsAfter[n.ID]
		}
	}
	want = valsBefore[y.ID()]
	if !tensor.AllClose(got, want, 1e-6, 1e-6) {
		t.Errorf("fused result %v != %v", got.F32(), want.F32())
	}
}

func TestFuseElementwiseRespectsFanout(t *testing.T) {
	// A value with two consumers must stay materialized: only the
	// single-consumer suffix fuses.
	b := lazy.NewBuilder("fanout")
	x := b.Input("x", tensor.New(tensor.F32, 4))
	s := b.Scale(x, 2) // two consumers: cannot fuse into the relu chain
	r1 := b.ReLU(s)
	r2 := b.GELU(s)
	b.MarkOutput(b.Add(r1, r2))

	_, fused := FuseElementwise{}.Apply(b.Graph())
	if fused != 0 {
		t.Errorf("fused %d nodes across a fan-out", fused)
	}
}

func TestFuseElementwiseKeepsOutputsMaterialized(t *testing.T) {
	b := lazy.NewBuilder("out")
	x := b.Input("x", tensor.New(tensor.F32, 4))
	h := b.Scale(x, 2)
	y := b.ReLU(h)
	b.MarkOutput(y) // tail is an external output: chain must keep identity
	g2, fused := FuseElementwise{}.Apply(b.Graph())
	// The tail is externally observable so it cannot be swallowed; with
	// only one fusible interior node no fusion happens.
	if fused != 0 {
		t.Errorf("fused %d nodes into an external output", fused)
	}
	_ = g2
}

func TestFuseOnGPTDecodeGraphPreservesTokens(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := models.NewGPT(rng, models.TinyGPT)
	bld, out := m.BuildPrefill([]int64{3, 1, 4, 1})
	want := evalGraph(t, bld.Graph(), bld)[out.NextToken].I64()[0]

	g2, fused := FuseElementwise{}.Apply(bld.Graph())
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	t.Logf("fused %d nodes (graph %d -> %d)", fused, bld.Graph().Len(), g2.Len())
	valsAfter := evalGraph(t, g2, bld)
	var got int64 = -1
	for _, n := range g2.Nodes() {
		if n.Op == "argmax_last" {
			got = valsAfter[n.ID].I64()[0]
		}
	}
	if got != want {
		t.Errorf("fused prefill predicts %d, want %d", got, want)
	}
}
