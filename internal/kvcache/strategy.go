package kvcache

import (
	"context"
	"fmt"

	"genie/internal/exec"
	"genie/internal/lazy"
	"genie/internal/models"
	"genie/internal/nn"
	"genie/internal/runtime"
	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// prefillPlan normalizes the two prefill graph shapes (full
// models.BuildPrefill on a miss, models.BuildPrefillExtend on a hit)
// to the node ids the strategies consume.
type prefillPlan struct {
	next, lastLogits srg.NodeID
	cacheK, cacheV   []srg.NodeID // full cache after the call (scoped Keep targets)
	newK, newV       []srg.NodeID // fresh suffix rows (tree-insert readback)
}

func buildPrefill(m *models.GPT, prompt []int64, matched int, prefix []*nn.KVCache) (*lazy.Builder, prefillPlan) {
	if matched == 0 {
		b, out := m.BuildPrefill(prompt)
		return b, prefillPlan{
			next: out.NextToken, lastLogits: out.LastLogits,
			cacheK: out.CacheK, cacheV: out.CacheV,
			newK: out.NewK, newV: out.NewV,
		}
	}
	b, out := m.BuildPrefillExtend(prompt[matched:], matched, prefix)
	return b, prefillPlan{
		next: out.NextToken, lastLogits: out.LastLogits,
		cacheK: out.CacheK, cacheV: out.CacheV,
		newK: out.NewK, newV: out.NewV,
	}
}

// scopedKeys enumerates the session's cache-plane keys.
func scopedKeys(scope string, m *models.GPT) []string {
	keys := make([]string, 0, 2*m.Cfg.Layers)
	for i := 0; i < m.Cfg.Layers; i++ {
		keys = append(keys, scope+models.CacheRef(i, "k"), scope+models.CacheRef(i, "v"))
	}
	return keys
}

// --- Colocated local strategy ---

// Runner returns an LLMRunner whose ModeLocal sessions consult the
// prefix cache: Prefill runs only the uncached suffix, and per-session
// history lives in arena-backed pages. Token sequences are bit-identical
// to the uncached local mode.
func (m *Manager) Runner() *runtime.LLMRunner {
	return &runtime.LLMRunner{
		Model: m.cfg.Model,
		NewStrategy: func(_ context.Context, mode runtime.Mode, scope string) (runtime.Strategy, error) {
			if mode != runtime.ModeLocal {
				return nil, fmt.Errorf("kvcache: local cached runner supports mode local, not %s", mode)
			}
			return &localCachedSession{m: m, scope: scope}, nil
		},
	}
}

// localCachedSession executes locally with a paged private history: the
// prompt prefix is copied from the tree once at prefill, and every
// decode step gathers the paged history into a contiguous view for the
// dense kernels (an honest cost the bench section reports — real paged
// attention reads pages in place).
type localCachedSession struct {
	m     *Manager
	scope string
	pin   *Pin
	hist  *pageRun
	keep  map[srg.NodeID]bool
}

func (s *localCachedSession) Prefill(_ context.Context, prompt []int64) (int64, error) {
	cfg := s.m.cfg.Model.Cfg
	pin, prefix, release, matched, err := s.m.Lookup(prompt)
	if err != nil {
		return 0, err
	}
	defer release()

	b, plan := buildPrefill(s.m.cfg.Model, prompt, matched, prefix)
	keep := make(map[srg.NodeID]bool, 2*len(plan.newK)+1)
	for i := range plan.newK {
		keep[plan.newK[i]] = true
		keep[plan.newV[i]] = true
	}
	keep[plan.next] = true
	vals, err := exec.GraphEphemeral(b.Graph(), runtime.BindAll(b), keep)
	if err != nil {
		pin.Unpin()
		return 0, err
	}
	newK := make([]*tensor.Tensor, cfg.Layers)
	newV := make([]*tensor.Tensor, cfg.Layers)
	for i := 0; i < cfg.Layers; i++ {
		newK[i], newV[i] = vals[plan.newK[i]], vals[plan.newV[i]]
	}
	// The kept suffix rows are arena scratch; the history append and tree
	// insert copy them, so recycle on every exit path, error or not.
	defer func() {
		for i := range newK {
			newK[i].Release()
			newV[i].Release()
		}
	}()

	// Private paged history: prefix copy + fresh suffix rows.
	s.hist = newRun(cfg.Layers, s.m.cfg.PageTokens, cfg.Dim)
	if matched > 0 {
		pk := make([]*tensor.Tensor, cfg.Layers)
		pv := make([]*tensor.Tensor, cfg.Layers)
		for i := range prefix {
			pk[i], pv[i] = prefix[i].K, prefix[i].V
		}
		if err := s.hist.appendRows(pk, pv, 0, matched); err != nil {
			pin.Unpin()
			return 0, err
		}
	}
	if err := s.hist.appendRows(newK, newV, 0, len(prompt)-matched); err != nil {
		pin.Unpin()
		return 0, err
	}

	insertPin, err := s.m.Insert(prompt, matched, newK, newV)
	pin.Unpin()
	if err != nil {
		return 0, err
	}
	s.pin = insertPin
	return vals[plan.next].I64()[0], nil
}

func (s *localCachedSession) Step(_ context.Context, tok int64) (int64, error) {
	cfg := s.m.cfg.Model.Cfg
	caches, release, err := gatherCaches([]*pageRun{s.hist}, cfg.Layers, cfg.Dim)
	if err != nil {
		return 0, err
	}
	defer release()
	hist := s.hist.tokens
	b, out := s.m.cfg.Model.BuildDecodeStep(tok, hist, hist, caches)
	if s.keep == nil {
		s.keep = make(map[srg.NodeID]bool, 2*len(out.NewK)+1)
	} else {
		clear(s.keep)
	}
	for i := range out.NewK {
		s.keep[out.NewK[i]] = true
		s.keep[out.NewV[i]] = true
	}
	s.keep[out.NextToken] = true
	vals, err := exec.GraphEphemeral(b.Graph(), runtime.BindAll(b), s.keep)
	if err != nil {
		return 0, err
	}
	newK := make([]*tensor.Tensor, cfg.Layers)
	newV := make([]*tensor.Tensor, cfg.Layers)
	for i := 0; i < cfg.Layers; i++ {
		newK[i], newV[i] = vals[out.NewK[i]], vals[out.NewV[i]]
	}
	if err := s.hist.appendRows(newK, newV, 0, 1); err != nil {
		return 0, err
	}
	for i := range newK {
		newK[i].Release()
		newV[i].Release()
	}
	return vals[out.NextToken].I64()[0], nil
}

func (s *localCachedSession) Close() error {
	s.pin.Unpin()
	if s.hist != nil {
		s.hist.release()
	}
	return nil
}

// ResidentKeys reports the session's cache-plane keys (client-local
// state; nothing to Free remotely).
func (s *localCachedSession) ResidentKeys() []string {
	return scopedKeys(s.scope, s.m.cfg.Model)
}

// --- Colocated remote strategy ---

// RunnerOn returns an LLMRunner whose ModeSemAware sessions consult the
// prefix cache while executing on ep as fused RPCs. On a hit, the cached
// prefix enters the graph as dedup-hinted inline binds: over a
// feature-negotiated transport a prefix the connection has seen before
// collapses to a 32-byte hash — zero content bytes on the wire. The
// fresh suffix rows are read back once to feed the tree; decode steps
// bind the remote cache by scoped key exactly like the plain
// semantics-aware mode.
func (m *Manager) RunnerOn(ep runtime.Endpoint, counters *transport.Counters) *runtime.LLMRunner {
	return &runtime.LLMRunner{
		Model:    m.cfg.Model,
		EP:       ep,
		Counters: counters,
		NewStrategy: func(_ context.Context, mode runtime.Mode, scope string) (runtime.Strategy, error) {
			if mode != runtime.ModeSemAware {
				return nil, fmt.Errorf("kvcache: remote cached runner supports mode semantics_aware, not %s", mode)
			}
			return &remoteCachedSession{m: m, ep: ep, scope: scope, nilCaches: nilCaches(m.cfg.Model)}, nil
		},
	}
}

func nilCaches(m *models.GPT) []*nn.KVCache {
	cs := make([]*nn.KVCache, m.Cfg.Layers)
	for i := range cs {
		cs[i] = &nn.KVCache{}
	}
	return cs
}

type remoteCachedSession struct {
	m         *Manager
	ep        runtime.Endpoint
	scope     string
	pin       *Pin
	epoch     uint32
	hist      int
	nilCaches []*nn.KVCache
}

func (s *remoteCachedSession) Prefill(ctx context.Context, prompt []int64) (int64, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	cfg := s.m.cfg.Model.Cfg
	pin, prefix, release, matched, err := s.m.Lookup(prompt)
	if err != nil {
		return 0, err
	}
	defer release()

	b, plan := buildPrefill(s.m.cfg.Model, prompt, matched, prefix)
	ex := &transport.Exec{Graph: b.Graph()}
	for _, n := range b.Graph().Nodes() {
		if n.Op != "input" {
			continue
		}
		data, _ := b.InputData(n.Ref)
		// The gathered prefix rides the dedup plane: repeated prefixes
		// hash-collapse after their first trip on this connection.
		cache := n.Residency == srg.ResidencyStatefulKVCache
		ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Inline: data, Cache: cache})
	}
	ex.Keep = map[srg.NodeID]string{}
	for i := range plan.cacheK {
		ex.Keep[plan.cacheK[i]] = s.scope + models.CacheRef(i, "k")
		ex.Keep[plan.cacheV[i]] = s.scope + models.CacheRef(i, "v")
	}
	ex.Want = append(ex.Want, plan.next)
	for i := range plan.newK {
		ex.Want = append(ex.Want, plan.newK[i], plan.newV[i])
	}
	ok, err := s.ep.Exec(ex)
	if err != nil {
		pin.Unpin()
		return 0, err
	}
	newK := make([]*tensor.Tensor, cfg.Layers)
	newV := make([]*tensor.Tensor, cfg.Layers)
	for i := 0; i < cfg.Layers; i++ {
		newK[i], newV[i] = ok.Results[plan.newK[i]], ok.Results[plan.newV[i]]
	}
	insertPin, err := s.m.Insert(prompt, matched, newK, newV)
	pin.Unpin()
	if err != nil {
		return 0, err
	}
	s.pin = insertPin
	s.epoch = ok.Epoch
	s.hist = len(prompt)
	return ok.Results[plan.next].I64()[0], nil
}

func (s *remoteCachedSession) Step(ctx context.Context, tok int64) (int64, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	b, out := s.m.cfg.Model.BuildDecodeStep(tok, s.hist, s.hist, s.nilCaches)
	ex := &transport.Exec{Graph: b.Graph()}
	for _, n := range b.Graph().Nodes() {
		if n.Op != "input" {
			continue
		}
		if n.Residency == srg.ResidencyStatefulKVCache {
			ex.Binds = append(ex.Binds, transport.Binding{
				Ref: n.Ref, Key: s.scope + n.Ref, Epoch: s.epoch})
			continue
		}
		data, _ := b.InputData(n.Ref)
		ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Inline: data})
	}
	ex.Keep = map[srg.NodeID]string{}
	for i := range out.CacheK {
		ex.Keep[out.CacheK[i]] = s.scope + models.CacheRef(i, "k")
		ex.Keep[out.CacheV[i]] = s.scope + models.CacheRef(i, "v")
	}
	ex.Want = append(ex.Want, out.LastLogits, out.NextToken)
	ok, err := s.ep.Exec(ex)
	if err != nil {
		return 0, err
	}
	s.epoch = ok.Epoch
	s.hist++
	return ok.Results[out.NextToken].I64()[0], nil
}

func (s *remoteCachedSession) Close() error {
	s.pin.Unpin()
	var first error
	for _, k := range s.ResidentKeys() {
		if err := s.ep.Free(k); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ResidentKeys reports the session's endpoint-resident cache keys.
func (s *remoteCachedSession) ResidentKeys() []string {
	return scopedKeys(s.scope, s.m.cfg.Model)
}
