package serve

import (
	"sync"
	"time"
)

// Clock abstracts time so the whole engine is deterministic under test:
// deadlines, TTFT, and latency all read through it. The zero Config gets
// the real clock.
type Clock interface {
	Now() time.Time
}

// realClock is the production clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// FakeClock is a manually-advanced clock for deterministic tests.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock starts a fake clock at an arbitrary fixed instant.
func NewFakeClock() *FakeClock {
	return &FakeClock{t: time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// Now returns the current fake instant.
func (f *FakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

// Advance moves the clock forward.
func (f *FakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}
