package eval

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"genie/internal/backend"
	"genie/internal/chaos"
	"genie/internal/device"
	"genie/internal/health"
	"genie/internal/kvcache"
	"genie/internal/models"
	"genie/internal/runtime"
	"genie/internal/serve"
	"genie/internal/transport"
	"genie/internal/workload"
)

// BrownoutServingConfig parameterizes the fail-slow benchmark: the
// serving engine replays one open-loop arrival schedule four times —
// fully healthy, one lane browned out with the health layer off, the
// same brownout with health scoring on, and a prefill/decode split with
// hedged prefill — and the runs are compared on p99 TTFT, goodput, and
// token bit-identity.
type BrownoutServingConfig struct {
	Backends  int
	MaxBatch  int
	Requests  int
	Rate      float64 // open-loop Poisson arrivals, req/s
	MaxTokens int
	Seed      int64
	// PauseDur is the brownout lever: every conn operation of lane 0
	// stalls this long (chaos PauseEvery=1), turning a millisecond-scale
	// op into a PauseDur-scale one — the "lane slowed ~50×" condition
	// when PauseDur is tens of ms against TinyGPT's sub-ms ops.
	PauseDur time.Duration
	// RetryBudget bounds per-request re-queues in the health-on run
	// (deadline-cancelled ops on the sick lane requeue and burn one).
	RetryBudget int
	// HedgeFloor is the minimum wait before the hedged run's backup
	// prefill launches.
	HedgeFloor time.Duration
}

// DefaultBrownoutServingConfig mirrors the chaos-serving setup with a
// 25ms-per-op brownout on lane 0. The arrival window (64 requests at
// 800/s = 80ms) is deliberately longer than the chaos bench's burst:
// a burst one healthy lane can swallow before the sick lane dequeues
// anything would measure scheduling luck, not the defense.
func DefaultBrownoutServingConfig() BrownoutServingConfig {
	return BrownoutServingConfig{
		Backends:    2,
		MaxBatch:    8,
		Requests:    64,
		Rate:        800,
		MaxTokens:   6,
		Seed:        7,
		PauseDur:    25 * time.Millisecond,
		RetryBudget: 4,
		HedgeFloor:  5 * time.Millisecond,
	}
}

// BrownoutRun is one run's scorecard.
type BrownoutRun struct {
	Name      string
	Completed int64
	// Failed is everything that did not complete: errors, shed, expired,
	// out-of-budget 503s. The fail-slow story stands or falls on this
	// staying zero while the lane crawls.
	Failed      int64
	Requeued    int64
	Unavailable int64
	P50TTFT     time.Duration
	P99TTFT     time.Duration
	Goodput     float64 // tokens/s over the whole run
	Makespan    time.Duration
	// TokensMatch reports whether every request's token stream was
	// bit-identical to the healthy baseline's (fail-slow tolerance must
	// never trade correctness for latency). Always true for the baseline.
	TokensMatch bool
	// Quarantined counts lanes the health layer had quarantined at drain
	// time (health-on runs only).
	Quarantined int
	// Demoted counts lanes the scorer held in any non-healthy state
	// (Suspect and worse) at drain time — often the whole defense: a
	// Suspect lane refuses admission while healthy capacity remains, so
	// no op ever has to be killed.
	Demoted int
	// Hedged/HedgeWins are the hedged run's prefill race counters.
	Hedged    int64
	HedgeWins int64
}

// BrownoutServingResult is the four-run comparison.
type BrownoutServingResult struct {
	Healthy   BrownoutRun // no fault, health off
	HealthOff BrownoutRun // lane 0 browned out, nothing defends
	HealthOn  BrownoutRun // same brownout, health scoring + quarantine
	Hedged    BrownoutRun // split prefill lanes, one browned, hedging on
	ChaosSeed int64
	PauseDur  time.Duration
}

// RunBrownoutServing measures serving under a fail-slow lane. All four
// runs replay the same Poisson arrivals and prompts; token streams are
// checked bit-for-bit against the healthy baseline.
func RunBrownoutServing(ctx context.Context, cfg BrownoutServingConfig) (BrownoutServingResult, error) {
	if cfg.Backends < 2 {
		return BrownoutServingResult{}, fmt.Errorf("eval: brownout needs >= 2 backends, got %d", cfg.Backends)
	}
	out := BrownoutServingResult{ChaosSeed: cfg.Seed, PauseDur: cfg.PauseDur}

	healthy, ref, err := runBrownoutServing(ctx, cfg, brownoutSpec{name: "healthy"})
	if err != nil {
		return out, fmt.Errorf("eval: healthy run: %w", err)
	}
	healthy.TokensMatch = true
	out.Healthy = healthy

	off, offToks, err := runBrownoutServing(ctx, cfg, brownoutSpec{name: "health_off", brown: true})
	if err != nil {
		return out, fmt.Errorf("eval: health-off run: %w", err)
	}
	off.TokensMatch = tokensMatch(ref, offToks)
	out.HealthOff = off

	on, onToks, err := runBrownoutServing(ctx, cfg, brownoutSpec{
		name: "health_on", brown: true, healthOn: true, opTimeout: 2 * time.Second,
	})
	if err != nil {
		return out, fmt.Errorf("eval: health-on run: %w", err)
	}
	on.TokensMatch = tokensMatch(ref, onToks)
	out.HealthOn = on

	hedged, hToks, err := runBrownoutHedged(ctx, cfg)
	if err != nil {
		return out, fmt.Errorf("eval: hedged run: %w", err)
	}
	hedged.TokensMatch = tokensMatch(ref, hToks)
	out.Hedged = hedged
	return out, nil
}

type brownoutSpec struct {
	name     string
	brown    bool // lane 0 gets the per-op pause
	healthOn bool
	// opTimeout caps the adaptive per-op deadline (health-on); zero in
	// the health-off run means no deadline at all — nothing converts the
	// slow lane's crawl into a failure, which is exactly the point.
	opTimeout time.Duration
}

// brownoutBackend builds one in-process backend; a non-nil plan browns
// out the client side of its pipe.
func brownoutBackend(model *models.GPT, plan *chaos.Plan) (*runtime.LLMRunner, *transport.Client, func()) {
	rawC, rawS := net.Pipe()
	var clientSide net.Conn = rawC
	if plan != nil {
		clientSide = plan.WrapConn(rawC)
	}
	cconn := transport.NewConn(clientSide, nil, nil)
	sconn := transport.NewConn(rawS, nil, nil)
	bs := backend.NewServer(device.A100)
	go func() { _ = bs.Serve(sconn) }()
	cli := transport.NewClient(cconn)
	r := &runtime.LLMRunner{Model: model, EP: cli}
	return r, cli, func() { _ = cconn.Close(); _ = sconn.Close() }
}

// runBrownoutServing drives one engine run and returns its scorecard
// plus the per-request token streams.
func runBrownoutServing(ctx context.Context, cfg BrownoutServingConfig, spec brownoutSpec) (BrownoutRun, [][]int64, error) {
	run := BrownoutRun{Name: spec.name}
	var plan *chaos.Plan
	if spec.brown {
		plan = chaos.NewPlan(cfg.Seed, chaos.Config{PauseEvery: 1, PauseDur: cfg.PauseDur})
		plan.SetActive(false) // clean weight install; armed after NewEngine
	}
	var pool []serve.Backend
	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for i := 0; i < cfg.Backends; i++ {
		var lanePlan *chaos.Plan
		if i == 0 {
			lanePlan = plan
		}
		model := models.NewGPT(rand.New(rand.NewSource(cfg.Seed)), models.TinyGPT)
		r, _, stop := brownoutBackend(model, lanePlan)
		stops = append(stops, stop)
		pool = append(pool, serve.Backend{Name: fmt.Sprintf("b%d", i), Runner: r})
	}
	var hs *health.Set
	if spec.healthOn {
		// MinSamples 3: the bench run is a few hundred ms, and a browned
		// lane produces evidence slowly (each judged op costs its full
		// crawl, then the breaker parks the lane between attempts). The
		// production default of 8 suits long-lived serving; here it would
		// let the run end before the verdict. DeadlineFactor 2 tightens
		// the adaptive op deadline for the same reason: the victims of
		// the sick lane pay that deadline once in their TTFT.
		hs = health.NewSet(health.Config{MinSamples: 3, DeadlineFactor: 2})
	}
	engine, err := serve.NewEngine(serve.Config{
		Mode:        runtime.ModeSemAware,
		MaxQueue:    cfg.Requests,
		MaxBatch:    cfg.MaxBatch,
		RetryBudget: cfg.RetryBudget,
		OpTimeout:   spec.opTimeout,
		Health:      hs,
		// 10ms floor (vs the 50ms default): TinyGPT ops are sub-ms, so
		// even this floor is 10× the healthy worst case.
		HealthOpFloor: 10 * time.Millisecond,
	}, pool)
	if err != nil {
		return run, nil, err
	}
	if plan != nil {
		plan.SetActive(true)
	}
	engine.Start()
	defer engine.Stop()

	toks, makespan, err := replayArrivals(ctx, engine, cfg)
	if err != nil {
		return run, nil, err
	}
	st := engine.Stats()
	run.Completed = st.Completed
	run.Failed = int64(cfg.Requests) - st.Completed
	run.Requeued = st.Requeued
	run.Unavailable = st.Unavailable
	run.P50TTFT = st.TTFT.P50
	run.P99TTFT = st.TTFT.P99
	run.Goodput = st.TokensPerSec
	run.Makespan = makespan
	if hs != nil {
		for _, eh := range hs.Snapshot() {
			if eh.Quarantined {
				run.Quarantined++
			}
			if eh.State != "healthy" {
				run.Demoted++
			}
		}
	}
	return run, toks, nil
}

// runBrownoutHedged drives the prefill/decode split arrangement: two
// prefill lanes (one browned out) behind hedged prefill plus a healthy
// decode backend form one engine lane; a second plain healthy backend
// keeps the engine at the baseline's two lanes, so TTFT differences
// come from hedging, not from halved capacity.
func runBrownoutHedged(ctx context.Context, cfg BrownoutServingConfig) (BrownoutRun, [][]int64, error) {
	run := BrownoutRun{Name: "hedged"}
	model := models.NewGPT(rand.New(rand.NewSource(cfg.Seed)), models.TinyGPT)
	plan := chaos.NewPlan(cfg.Seed, chaos.Config{PauseEvery: 1, PauseDur: cfg.PauseDur})
	plan.SetActive(false)

	_, slowCli, stopSlow := brownoutBackend(model, plan)
	_, fastCli, stopFast := brownoutBackend(model, nil)
	_, decCli, stopDec := brownoutBackend(model, nil)
	plainRunner, _, stopPlain := brownoutBackend(model, nil)
	defer stopSlow()
	defer stopFast()
	defer stopDec()
	defer stopPlain()

	hs := health.NewSet(health.Config{MinSamples: 3})
	sp, err := kvcache.NewSplit(kvcache.SplitConfig{
		Model:  model,
		Decode: decCli,
		Lanes: []kvcache.PrefillLane{
			{Name: "pf-slow", EP: slowCli},
			{Name: "pf-spare", EP: fastCli},
		},
		Health:       hs,
		HedgePrefill: true,
		HedgeFloor:   cfg.HedgeFloor,
	})
	if err != nil {
		return run, nil, err
	}
	if err := sp.InstallWeights(); err != nil {
		return run, nil, err
	}
	engine, err := serve.NewEngine(serve.Config{
		Mode:        runtime.ModeSemAware,
		MaxQueue:    cfg.Requests,
		MaxBatch:    cfg.MaxBatch,
		RetryBudget: cfg.RetryBudget,
		OpTimeout:   2 * time.Second,
	}, []serve.Backend{
		{Name: "split", Runner: sp.Runner()},
		{Name: "plain", Runner: plainRunner},
	})
	if err != nil {
		return run, nil, err
	}
	plan.SetActive(true)
	engine.Start()
	defer engine.Stop()

	toks, makespan, err := replayArrivals(ctx, engine, cfg)
	if err != nil {
		return run, nil, err
	}
	st := engine.Stats()
	run.Completed = st.Completed
	run.Failed = int64(cfg.Requests) - st.Completed
	run.Requeued = st.Requeued
	run.Unavailable = st.Unavailable
	run.P50TTFT = st.TTFT.P50
	run.P99TTFT = st.TTFT.P99
	run.Goodput = st.TokensPerSec
	run.Makespan = makespan
	run.Hedged = sp.Hedged()
	run.HedgeWins = sp.HedgeWins()
	for _, eh := range hs.Snapshot() {
		if eh.Quarantined {
			run.Quarantined++
		}
		if eh.State != "healthy" {
			run.Demoted++
		}
	}
	return run, toks, nil
}

// replayArrivals submits the configured Poisson stream and drains,
// returning per-request token streams and the makespan.
func replayArrivals(ctx context.Context, engine *serve.Engine, cfg BrownoutServingConfig) ([][]int64, time.Duration, error) {
	arrivals := workload.PoissonArrivals(cfg.Seed, cfg.Rate, cfg.Requests)
	prompts := workload.LLMTrace{
		Requests: cfg.Requests, Vocab: int(models.TinyGPT.Vocab),
		PromptMin: 4, PromptMax: 12, DecodeMin: cfg.MaxTokens, DecodeMax: cfg.MaxTokens,
	}.Generate(cfg.Seed)
	toks := make([][]int64, cfg.Requests)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(arrivals[i] - time.Since(start))
			res, err := engine.Submit(ctx, serve.Request{
				Tenant:    fmt.Sprintf("t%d", i%4),
				Prompt:    prompts[i].Prompt,
				MaxTokens: cfg.MaxTokens,
			})
			if err == nil {
				toks[i] = res.Tokens
			}
		}(i)
	}
	wg.Wait()
	drainCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if err := engine.Drain(drainCtx); err != nil {
		return nil, 0, fmt.Errorf("drain: %w", err)
	}
	return toks, time.Since(start), nil
}

// tokensMatch compares per-request token streams against the baseline.
// Requests missing from either side (failed) count as mismatches.
func tokensMatch(ref, got [][]int64) bool {
	if len(ref) != len(got) {
		return false
	}
	for i := range ref {
		if len(ref[i]) != len(got[i]) {
			return false
		}
		for j := range ref[i] {
			if ref[i][j] != got[i][j] {
				return false
			}
		}
	}
	return true
}
