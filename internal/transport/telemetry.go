package transport

import (
	"genie/internal/obs"
)

// maxKind bounds the per-kind telemetry tables (MsgStatsOK is the
// highest assigned type).
const maxKind = int(MsgStatsOK) + 1

// Telemetry accounts wire traffic per RPC kind into an obs.Registry:
// exact frame bytes (header + envelope + payload) sent and received,
// and round trips initiated. A nil *Telemetry is a no-op, so conns stay
// zero-cost when the process is not instrumented. Counters are indexed
// by MsgType at call time — no map lookups on the datapath.
type Telemetry struct {
	sent  [maxKind]*obs.Counter
	recv  [maxKind]*obs.Counter
	calls [maxKind]*obs.Counter
}

// NewTelemetry registers the transport counter families in reg and
// returns the instrument. Sharing one Telemetry across conns aggregates
// their traffic into the same series.
func NewTelemetry(reg *obs.Registry) *Telemetry {
	t := &Telemetry{}
	for k := 1; k < maxKind; k++ {
		kind := KindName(MsgType(k))
		t.sent[k] = reg.Counter("genie_transport_sent_bytes_total",
			"frame bytes written per RPC kind", "kind", kind)
		t.recv[k] = reg.Counter("genie_transport_recv_bytes_total",
			"frame bytes read per RPC kind", "kind", kind)
		t.calls[k] = reg.Counter("genie_transport_calls_total",
			"RPC round trips initiated per kind", "kind", kind)
	}
	return t
}

func (t *Telemetry) onSend(mt MsgType, n int64) {
	if t == nil || int(mt) >= maxKind || mt == 0 {
		return
	}
	t.sent[mt].Add(n)
}

func (t *Telemetry) onRecv(mt MsgType, n int64) {
	if t == nil || int(mt) >= maxKind || mt == 0 {
		return
	}
	t.recv[mt].Add(n)
}

func (t *Telemetry) onCall(mt MsgType) {
	if t == nil || int(mt) >= maxKind || mt == 0 {
		return
	}
	t.calls[mt].Inc()
}

// SentBytes returns the accounted bytes written for one kind (tests,
// eval summaries).
func (t *Telemetry) SentBytes(mt MsgType) int64 {
	if t == nil || int(mt) >= maxKind || mt == 0 {
		return 0
	}
	return t.sent[mt].Value()
}

// RecvBytes returns the accounted bytes read for one kind.
func (t *Telemetry) RecvBytes(mt MsgType) int64 {
	if t == nil || int(mt) >= maxKind || mt == 0 {
		return 0
	}
	return t.recv[mt].Value()
}

// Calls returns the round trips initiated for one kind.
func (t *Telemetry) Calls(mt MsgType) int64 {
	if t == nil || int(mt) >= maxKind || mt == 0 {
		return 0
	}
	return t.calls[mt].Value()
}
