package backend

import (
	"testing"

	"genie/internal/device"
	"genie/internal/lazy"
	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/transport"
)

func tenantPair(t *testing.T) (*Server, *TenantView, *TenantView) {
	t.Helper()
	s := NewServer(device.A100)
	alice, err := s.Tenant("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := s.Tenant("bob")
	if err != nil {
		t.Fatal(err)
	}
	return s, alice, bob
}

func TestTenantNamespaceIsolation(t *testing.T) {
	_, alice, bob := tenantPair(t)
	secret := tensor.FromF32(tensor.Shape{2}, []float32{4, 2})
	if _, err := alice.Upload("model.w", secret); err != nil {
		t.Fatal(err)
	}
	// Bob cannot read Alice's object under the same key.
	if _, err := bob.Fetch("model.w", 0); err == nil {
		t.Fatal("cross-tenant fetch must fail")
	}
	// Bob's own upload under the same key does not clobber Alice's.
	bobData := tensor.FromF32(tensor.Shape{2}, []float32{9, 9})
	if _, err := bob.Upload("model.w", bobData); err != nil {
		t.Fatal(err)
	}
	got, err := alice.Fetch("model.w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.F32()[0] != 4 {
		t.Error("alice's object was clobbered by bob")
	}
	// Bob freeing "model.w" frees only his copy.
	if err := bob.Free("model.w"); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Fetch("model.w", 0); err != nil {
		t.Error("alice's object vanished after bob's free")
	}
}

func TestTenantExecCannotReachGlobalStore(t *testing.T) {
	s, alice, _ := tenantPair(t)
	// A global (non-tenant) object exists under the param's ref.
	mustUpload(t, s, "w", tensor.FromF32(tensor.Shape{2, 2}, []float32{1, 0, 0, 1}))

	b := lazy.NewBuilder("mm")
	x := b.Input("x", tensor.FromF32(tensor.Shape{1, 2}, []float32{1, 2}))
	w := b.Param("w", tensor.New(tensor.F32, 2, 2))
	y := b.MatMul(x, w)
	xt, _ := b.InputData("x")
	ex := &transport.Exec{
		Graph: b.Graph(),
		Binds: []transport.Binding{{Ref: "x", Inline: xt}},
		Want:  []srg.NodeID{y.ID()},
	}
	// The unbound param must NOT silently resolve to the global "w".
	if _, err := alice.Exec(ex); err == nil {
		t.Fatal("tenant exec escaped its namespace via the param fallback")
	}
	// After the tenant installs its own copy, execution succeeds.
	if _, err := alice.Upload("w", tensor.FromF32(tensor.Shape{2, 2}, []float32{2, 0, 0, 2})); err != nil {
		t.Fatal(err)
	}
	ok, err := alice.Exec(ex)
	if err != nil {
		t.Fatal(err)
	}
	if ok.Results[y.ID()].F32()[0] != 2 {
		t.Errorf("tenant exec used wrong weights: %v", ok.Results[y.ID()].F32())
	}
}

func TestTenantKeepStaysNamespaced(t *testing.T) {
	s, alice, bob := tenantPair(t)
	b := lazy.NewBuilder("keep")
	x := b.Input("x", tensor.FromF32(tensor.Shape{1}, []float32{3}))
	yv := b.Scale(x, 2)
	xt, _ := b.InputData("x")
	ex := &transport.Exec{
		Graph: b.Graph(),
		Binds: []transport.Binding{{Ref: "x", Inline: xt}},
		Keep:  map[srg.NodeID]string{yv.ID(): "act"},
	}
	ok, err := alice.Exec(ex)
	if err != nil {
		t.Fatal(err)
	}
	if _, echoed := ok.Kept["act"]; !echoed {
		t.Errorf("kept echo not stripped to tenant namespace: %v", ok.Kept)
	}
	if _, err := alice.Fetch("act", 0); err != nil {
		t.Errorf("tenant cannot read back its kept object: %v", err)
	}
	if _, err := bob.Fetch("act", 0); err == nil {
		t.Error("bob read alice's kept activation")
	}
	// Raw store key is namespaced.
	if _, err := s.Lookup("tenant/alice/act", 0); err != nil {
		t.Errorf("expected namespaced raw key: %v", err)
	}
}

func TestTenantNameValidation(t *testing.T) {
	s := NewServer(device.A100)
	for _, bad := range []string{"", "a/b", "x\x00y"} {
		if _, err := s.Tenant(bad); err == nil {
			t.Errorf("tenant name %q should be rejected", bad)
		}
	}
}

func TestExecAttestation(t *testing.T) {
	s := NewServer(device.A100)
	b := lazy.NewBuilder("att")
	x := b.Input("x", tensor.FromF32(tensor.Shape{1}, []float32{1}))
	y := b.ReLU(x)
	xt, _ := b.InputData("x")
	ex := &transport.Exec{
		Graph: b.Graph(),
		Binds: []transport.Binding{{Ref: "x", Inline: xt}},
		Want:  []srg.NodeID{y.ID()},
	}
	ok, err := s.Exec(ex)
	if err != nil {
		t.Fatal(err)
	}
	if ok.GraphFP != b.Graph().Fingerprint() {
		t.Errorf("attestation %q != graph fingerprint %q", ok.GraphFP, b.Graph().Fingerprint())
	}
}
