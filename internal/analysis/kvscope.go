package analysis

import (
	"go/ast"
	"go/types"
)

// KvscopeAnalyzer guards KV-cache key discipline. Session KV state is
// the one thing the disaggregation layer must never confuse across
// tenants or shards: keys are namespaced by a per-session scope prefix
// (runtime.Session, pool.Manager, and the kvcache strategies all derive
// keys as scope + models.CacheRef(layer, half)), and only the
// plan-owner packages — internal/pool, internal/runtime, and
// internal/kvcache (whose strategies place prefix-cached KV on
// backends) — may decide which backend retains which key. Two rules
// follow:
//
//  1. a models.CacheRef result bound into a KV sink
//     (transport.Binding.Key or a transport Exec.Keep value) must carry
//     a scope prefix: a bare CacheRef collides across sessions the
//     moment two of them share a backend
//  2. CacheRef-derived keys may reach a KV sink only in the plan-owner
//     packages; anywhere else in internal/ is cross-shard KV access
//     behind the plan's back
//
// The interprocedural summaries (Pass.Prog) extend both rules through
// helpers: passing a bare CacheRef to a function whose parameter flows
// into a sink is flagged at the call site, which the old AST-local pass
// could not see.
var KvscopeAnalyzer = &Analyzer{
	Name: "kvscope",
	Doc:  "session KV keys must be scope-prefixed and bound only by the plan owners",
	AppliesTo: func(scope string) bool {
		return hasPrefixPath(scope, "genie/internal")
	},
	Run: runKvscope,
}

// kvOwnerScope reports whether scope is a plan-owner package.
func kvOwnerScope(scope string) bool {
	return hasPrefixPath(scope, "genie/internal/pool") ||
		hasPrefixPath(scope, "genie/internal/runtime") ||
		hasPrefixPath(scope, "genie/internal/kvcache")
}

func runKvscope(pass *Pass) {
	ks := &kvScan{pass: pass, bindings: make(map[types.Object]ast.Expr)}
	// Single-level local bindings let the taint chase through
	// `key := models.CacheRef(i, "k"); ex.Keep[id] = key`.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			a, ok := n.(*ast.AssignStmt)
			if !ok || len(a.Lhs) != len(a.Rhs) {
				return true
			}
			for i, lhs := range a.Lhs {
				if id, ok := unparen(lhs).(*ast.Ident); ok {
					if obj := pass.Info.Defs[id]; obj != nil {
						ks.bindings[obj] = a.Rhs[i]
					}
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					if isKVKeepSink(pass.Info, lhs) {
						ks.judge(n.Rhs[i], "")
					}
				}
			case *ast.CompositeLit:
				if !isScopedNamed(typeOfExpr(pass.Info, n), "genie/internal/transport", "Binding") {
					return true
				}
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Key" {
							ks.judge(kv.Value, "")
						}
					}
				}
			case *ast.CallExpr:
				if pass.Prog == nil {
					return true
				}
				callee := calleeFunc(pass.Info, n)
				if callee == nil {
					return true
				}
				sum, ok := pass.Prog.Summary(callee)
				if !ok || sum.KVSinkParams == nil {
					return true
				}
				for j, arg := range n.Args {
					if sum.KVSinkParams[j] {
						ks.judge(arg, callee.Name())
					}
				}
			}
			return true
		})
	}
}

type kvScan struct {
	pass     *Pass
	bindings map[types.Object]ast.Expr
}

// judge applies both rules to a value reaching a KV sink. via names the
// helper carrying the value to the sink ("" for a direct binding).
func (ks *kvScan) judge(value ast.Expr, via string) {
	suffix := ""
	if via != "" {
		suffix = " (reaches the sink through " + via + ")"
	}
	switch {
	case ks.derivesCacheRef(value, nil) && !kvOwnerScope(ks.pass.ScopePath):
		ks.pass.Reportf(value.Pos(),
			"KV cache key bound outside the plan-owner packages internal/pool and internal/runtime%s; cross-shard KV residency is the plan owner's decision", suffix)
	case ks.bareCacheRef(value, nil):
		ks.pass.Reportf(value.Pos(),
			"KV key is a bare models.CacheRef with no session-scope prefix%s; two sessions on one backend would collide — bind scope+models.CacheRef(...)", suffix)
	}
}

// bareCacheRef reports whether e evaluates to a raw models.CacheRef
// result with nothing concatenated in front of it, chasing single-level
// local bindings.
func (ks *kvScan) bareCacheRef(e ast.Expr, seen map[types.Object]bool) bool {
	switch e := unparen(e).(type) {
	case *ast.CallExpr:
		return isScopedFunc(ks.pass.Info, e, "genie/internal/models", "CacheRef")
	case *ast.Ident:
		obj := ks.pass.Info.Uses[e]
		if obj == nil || seen[obj] {
			return false
		}
		bound, ok := ks.bindings[obj]
		if !ok {
			return false
		}
		if seen == nil {
			seen = make(map[types.Object]bool)
		}
		seen[obj] = true
		return ks.bareCacheRef(bound, seen)
	}
	return false
}

// derivesCacheRef reports whether any part of e comes from
// models.CacheRef — scoped or not.
func (ks *kvScan) derivesCacheRef(e ast.Expr, seen map[types.Object]bool) bool {
	switch e := unparen(e).(type) {
	case *ast.CallExpr:
		return isScopedFunc(ks.pass.Info, e, "genie/internal/models", "CacheRef")
	case *ast.BinaryExpr:
		return ks.derivesCacheRef(e.X, seen) || ks.derivesCacheRef(e.Y, seen)
	case *ast.Ident:
		obj := ks.pass.Info.Uses[e]
		if obj == nil || seen[obj] {
			return false
		}
		bound, ok := ks.bindings[obj]
		if !ok {
			return false
		}
		if seen == nil {
			seen = make(map[types.Object]bool)
		}
		seen[obj] = true
		return ks.derivesCacheRef(bound, seen)
	}
	return false
}
