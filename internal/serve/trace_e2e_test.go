package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"genie/internal/backend"
	"genie/internal/device"
	"genie/internal/models"
	"genie/internal/obs"
	"genie/internal/runtime"
	"genie/internal/transport"
)

// TestTraceSpanTreeEndToEnd drives one gateway request through the full
// stack — httptest gateway, engine, remote session, transport RPCs, an
// in-process backend.Server over transport.Pipe — with a single shared
// tracer, and asserts the result is ONE well-parented span tree:
//
//	http.generate
//	└── serve.request
//	    ├── serve.queue
//	    ├── serve.prefill
//	    │   └── session.prefill
//	    │       └── transport.{upload,exec}
//	    │           └── backend.{upload,exec}   (stitched via wire envelope)
//	    └── session.step → transport.exec → backend.exec
//
// It also checks the Chrome trace export round-trips through
// encoding/json and that /metrics exposes the serve + transport +
// backend families. Run under -race: spans are recorded from the HTTP
// goroutine, the lane goroutine, and the backend's serve goroutine.
func TestTraceSpanTreeEndToEnd(t *testing.T) {
	tr := obs.NewTracer(obs.TracerConfig{Proc: "e2e", Capacity: 4096})
	defer tr.Stop()
	reg := obs.NewRegistry()

	srv := backend.NewServer(device.A100)
	srv.SetTracer(tr)
	srv.Instrument(reg)
	cconn, sconn := transport.Pipe(nil, nil)
	defer cconn.Close()
	defer sconn.Close()
	cconn.SetTelemetry(transport.NewTelemetry(reg))
	go func() { _ = srv.Serve(sconn) }()

	rng := rand.New(rand.NewSource(tcpSeed))
	r := &runtime.LLMRunner{
		Model:    models.NewGPT(rng, models.TinyGPT),
		EP:       transport.NewClient(cconn),
		Counters: cconn.Counters(),
	}
	e, err := NewEngine(Config{
		Mode:    runtime.ModeSemAware,
		Tracer:  tr,
		Metrics: reg,
	}, []Backend{{Name: "b0", Runner: r}})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()

	ts := httptest.NewServer(NewHandler(e))
	defer ts.Close()

	body, _ := json.Marshal(GenerateRequest{Tenant: "alice", Prompt: e2ePrompt(1), MaxTokens: 3})
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var gres GenerateResponse
	if err := json.NewDecoder(resp.Body).Decode(&gres); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || gres.Error != "" {
		t.Fatalf("generate: status %d, error %q", resp.StatusCode, gres.Error)
	}
	if len(gres.Tokens) != 3 {
		t.Fatalf("got %d tokens, want 3", len(gres.Tokens))
	}

	// The handler's deferred root.End() runs after the response body is
	// written, so poll briefly for the root span to land in the ring.
	var spans []obs.Span
	deadline := time.Now().Add(5 * time.Second)
	for {
		spans = tr.Snapshot()
		if hasSpanNamed(spans, "http.generate") || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	byID := make(map[uint64]obs.Span, len(spans))
	trace := uint64(0)
	for _, s := range spans {
		byID[s.ID] = s
		if s.Name == "http.generate" {
			if s.Parent != 0 {
				t.Fatalf("root span has parent %#x", s.Parent)
			}
			trace = s.Trace
		}
	}
	if trace == 0 {
		t.Fatalf("no http.generate root among %d spans", len(spans))
	}

	// Every span belongs to the one trace and parents onto a recorded
	// span — including backend.* spans, whose parent crossed the wire in
	// the frame envelope rather than a context.
	layers := map[string]bool{}
	for _, s := range spans {
		if s.Trace != trace {
			t.Fatalf("span %s on trace %#x, want %#x", s.Name, s.Trace, trace)
		}
		layers[strings.SplitN(s.Name, ".", 2)[0]] = true
		if s.Parent == 0 {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %s has unrecorded parent %#x", s.Name, s.Parent)
		}
		if !validChild(p.Name, s.Name) {
			t.Fatalf("span %s parented under %s", s.Name, p.Name)
		}
	}
	for _, want := range []string{"http", "serve", "session", "transport", "backend"} {
		if !layers[want] {
			t.Fatalf("no %s.* span recorded; layers = %v", want, layers)
		}
	}
	// Spot-check the critical cross-process stitch: every backend.exec
	// parents under a transport.exec.
	execs := 0
	for _, s := range spans {
		if s.Name == "backend.exec" {
			execs++
			if byID[s.Parent].Name != "transport.exec" {
				t.Fatalf("backend.exec parented under %q", byID[s.Parent].Name)
			}
		}
	}
	if execs == 0 {
		t.Fatal("no backend.exec spans recorded")
	}

	// Chrome trace export must be valid JSON that encoding/json can
	// round-trip.
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(spans) {
		t.Fatalf("chrome trace has %d events for %d spans", len(doc.TraceEvents), len(spans))
	}

	// The gateway's /metrics must expose all three layers' families.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb := new(bytes.Buffer)
	if _, err := mb.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	for _, want := range []string{
		"genie_serve_admitted_total 1",
		"genie_serve_shed_total 0",
		"genie_serve_queue_depth 0",
		"genie_serve_decode_step_seconds_bucket",
		`genie_transport_sent_bytes_total{kind="exec"}`,
		"genie_backend_exec_total",
	} {
		if !strings.Contains(mb.String(), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

func hasSpanNamed(spans []obs.Span, name string) bool {
	for _, s := range spans {
		if s.Name == name {
			return true
		}
	}
	return false
}

// validChild encodes the legal parent→child edges of the span tree.
func validChild(parent, child string) bool {
	allowed := map[string][]string{
		"serve.request":   {"http.generate"},
		"serve.queue":     {"serve.request"},
		"serve.prefill":   {"serve.request"},
		"session.prefill": {"serve.prefill"},
		"session.step":    {"serve.request"},
		"transport.upload": {
			"session.prefill", "session.step", "serve.request", "serve.prefill"},
		"transport.exec": {
			"session.prefill", "session.step", "serve.request", "serve.prefill"},
		"backend.upload": {"transport.upload"},
		"backend.exec":   {"transport.exec"},
	}
	ps, ok := allowed[child]
	if !ok {
		return false
	}
	for _, p := range ps {
		if p == parent {
			return true
		}
	}
	return false
}
