package eval

import (
	"context"
	"testing"

	"genie/internal/runtime"
)

// TestOnlineServingEngine runs the live engine benchmark end to end:
// every request must complete, and the burst must actually exercise
// continuous batching (occupancy above one).
func TestOnlineServingEngine(t *testing.T) {
	cfg := DefaultOnlineServingConfig()
	cfg.Requests = 12
	cfg.Rate = 1e6 // effectively one burst: maximal overlap
	res, err := RunOnlineServing(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != int64(cfg.Requests) || res.Shed != 0 {
		t.Fatalf("completed %d shed %d, want %d/0", res.Completed, res.Shed, cfg.Requests)
	}
	if res.MaxOccupancy <= 1 {
		t.Fatalf("max occupancy %d: burst never shared a decode iteration", res.MaxOccupancy)
	}
	if res.TokensPerSec <= 0 || res.P95Lat <= 0 || res.P95TTFT <= 0 {
		t.Fatalf("missing telemetry: %+v", res)
	}
	if res.P95TTFT > res.P95Lat {
		t.Fatalf("p95 TTFT %v exceeds p95 latency %v", res.P95TTFT, res.P95Lat)
	}
}

// TestOnlineServingLocalMode: the engine also serves the local
// (non-disaggregated) upper bound.
func TestOnlineServingLocalMode(t *testing.T) {
	cfg := DefaultOnlineServingConfig()
	cfg.Mode = runtime.ModeLocal
	cfg.Backends = 1
	cfg.Requests = 6
	cfg.Rate = 1e6
	res, err := RunOnlineServing(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != int64(cfg.Requests) {
		t.Fatalf("completed %d, want %d", res.Completed, cfg.Requests)
	}
}
