package scheduler

import (
	"fmt"
	"sort"
	"strings"

	"genie/internal/srg"
)

// Rewrite is the §3.3 "graph rewrites (prepass)" extension point: a
// transformation applied to the SRG before placement. Rewrites must
// preserve semantics — the graph computes the same outputs — while
// changing its shape to schedule better.
type Rewrite interface {
	// Name identifies the rewrite in reports.
	Name() string
	// Apply returns a rewritten graph (possibly the input unchanged) and
	// how many nodes it affected.
	Apply(g *srg.Graph) (*srg.Graph, int)
}

// ApplyRewrites runs passes in order, returning the final graph and a
// per-pass change count.
func ApplyRewrites(g *srg.Graph, passes ...Rewrite) (*srg.Graph, map[string]int) {
	counts := map[string]int{}
	for _, p := range passes {
		var n int
		g, n = p.Apply(g)
		counts[p.Name()] += n
	}
	return g, counts
}

// DefaultRewrites returns the standard prepass pipeline.
func DefaultRewrites() []Rewrite {
	return []Rewrite{DeadNodeElimination{}, CommonSubexpression{}}
}

// rebuild constructs a new graph containing exactly the nodes in keep
// (which must be closed under inputs), remapping IDs densely and
// preserving edge annotations where both endpoints survive.
func rebuild(g *srg.Graph, keep map[srg.NodeID]bool, alias map[srg.NodeID]srg.NodeID) *srg.Graph {
	out := srg.New(g.Name)
	remap := map[srg.NodeID]srg.NodeID{}
	resolve := func(id srg.NodeID) srg.NodeID {
		for {
			if a, ok := alias[id]; ok {
				id = a
				continue
			}
			return id
		}
	}
	for _, n := range g.Nodes() {
		if !keep[n.ID] {
			continue
		}
		inputs := make([]srg.NodeID, len(n.Inputs))
		for i, in := range n.Inputs {
			inputs[i] = remap[resolve(in)]
		}
		var attrs map[string]string
		if n.Attrs != nil {
			attrs = make(map[string]string, len(n.Attrs))
			for k, v := range n.Attrs {
				attrs[k] = v
			}
		}
		clone := &srg.Node{
			Op: n.Op, Ref: n.Ref, Inputs: inputs, Attrs: attrs,
			Module: n.Module, Phase: n.Phase, Residency: n.Residency,
			Modality: n.Modality, Cost: n.Cost, Output: n.Output,
		}
		remap[n.ID] = out.MustAdd(clone)
	}
	// Preserve edge annotations for surviving consumers.
	for _, e := range g.Edges() {
		to, ok := remap[e.To]
		if !ok {
			continue
		}
		if e.Rate != 1 {
			out.SetEdgeRate(to, e.ArgIndex, e.Rate)
		}
		if e.Critical {
			out.SetEdgeCritical(to, e.ArgIndex, true)
		}
	}
	return out
}

// DeadNodeElimination removes nodes whose values can never be observed:
// not marked as outputs (external_output residency), not stateful
// products, and with no surviving consumers. The lazy frontend can leave
// such nodes behind when an application captures more than it reads.
type DeadNodeElimination struct{}

// Name implements Rewrite.
func (DeadNodeElimination) Name() string { return "dead_node_elimination" }

// Apply implements Rewrite.
func (DeadNodeElimination) Apply(g *srg.Graph) (*srg.Graph, int) {
	// Roots: externally visible values.
	var roots []srg.NodeID
	for _, n := range g.Nodes() {
		switch {
		case n.Residency == srg.ResidencyExternalOutput,
			n.Residency == srg.ResidencyStatefulKVCache && n.Op != "input":
			roots = append(roots, n.ID)
		}
	}
	if len(roots) == 0 {
		// Nothing marked: treat sinks as roots (conservative no-op-ish).
		roots = g.Outputs()
	}
	live := g.AncestorsOf(roots...)
	removed := g.Len() - len(live)
	if removed == 0 {
		return g, 0
	}
	return rebuild(g, live, nil), removed
}

// CommonSubexpression merges structurally identical compute nodes: same
// op, same attrs, same inputs. Transformer captures are full of these
// (e.g. repeated layernorm gains), and deduplication shrinks both the
// shipped SRG and the remote work.
type CommonSubexpression struct{}

// Name implements Rewrite.
func (CommonSubexpression) Name() string { return "common_subexpression" }

// Apply implements Rewrite.
func (CommonSubexpression) Apply(g *srg.Graph) (*srg.Graph, int) {
	alias := map[srg.NodeID]srg.NodeID{}
	seen := map[string]srg.NodeID{}
	resolve := func(id srg.NodeID) srg.NodeID {
		for {
			if a, ok := alias[id]; ok {
				id = a
				continue
			}
			return id
		}
	}
	merged := 0
	for _, n := range g.Nodes() {
		if n.Op == "param" || n.Op == "input" {
			// Leaves are identified by ref; duplicate refs cannot occur
			// (the builder panics), so leaves never merge.
			continue
		}
		// Stateful and output nodes keep their identity (their keys and
		// delivery matter).
		if n.Residency == srg.ResidencyStatefulKVCache || n.Residency == srg.ResidencyExternalOutput {
			continue
		}
		key := cseKey(n, resolve)
		if prev, ok := seen[key]; ok {
			alias[n.ID] = prev
			merged++
			continue
		}
		seen[key] = n.ID
	}
	if merged == 0 {
		return g, 0
	}
	keep := map[srg.NodeID]bool{}
	for _, n := range g.Nodes() {
		if _, dead := alias[n.ID]; !dead {
			keep[n.ID] = true
		}
	}
	return rebuild(g, keep, alias), merged
}

func cseKey(n *srg.Node, resolve func(srg.NodeID) srg.NodeID) string {
	var b strings.Builder
	b.WriteString(n.Op)
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, n.Attrs[k])
	}
	for _, in := range n.Inputs {
		fmt.Fprintf(&b, "|%d", resolve(in))
	}
	return b.String()
}
