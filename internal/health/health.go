// Package health is the fail-slow complement to transport's circuit
// breaker (DESIGN.md §13). The breaker answers a binary question — is
// this endpoint failing? — which misses the dominant production failure
// mode in disaggregated pools: a lane that is alive, answering every
// call, and 50× slower than its peers. Such a lane never trips anything
// yet poisons continuous batching (its decode steps pace the batch),
// split-prefill TTFT (the prefill wedges on it), and pool-sharded
// decode (every step waits for the slowest shard).
//
// A Set tracks one Tracker per endpoint. Trackers fold two signal
// families the serving layer already produces — per-operation latency
// (EWMA + an exact-percentile window reused from internal/obs) and
// error rate (an error EWMA over the breaker's failure classification)
// — plus lightweight active probes issued on idle lanes. Sickness is
// *relative*: a lane is slow compared to the best EWMA across its set,
// not against an absolute threshold, so the scorer needs no tuning per
// model or per hardware tier.
//
// The judgment is a graded state machine rather than open/closed:
//
//	Healthy ──(latency ratio or error rate past suspect bounds)──▶ Suspect
//	Suspect ──(past quarantine bounds)──▶ Quarantined
//	Suspect ──(recovered)──▶ Healthy
//	Quarantined ──(cooldown elapsed)──▶ Reinstating
//	Reinstating ──(ReinstateStreak consecutive successes)──▶ Healthy
//	Reinstating ──(any counted failure)──▶ Quarantined
//
// Suspect demotes (the lane admits work only when healthy lanes are
// saturated); Quarantined drains (active requests re-queue through the
// existing lineage-failover path, so no state is lost); Reinstating
// trickles one trial request at a time. Quarantine differs from
// breaker-open on purpose: the breaker's open state means calls *fail*
// and fast-fails them; quarantine means calls *succeed too slowly* to
// be worth issuing, while probes keep measuring the endpoint.
package health

import (
	"sync"
	"time"

	"genie/internal/obs"
)

// State is an endpoint's graded health position.
type State int

const (
	// Healthy: full admission.
	Healthy State = iota
	// Suspect: demoted — admitted only when healthy capacity is saturated.
	Suspect
	// Quarantined: drained — no admission, active work re-queued.
	Quarantined
	// Reinstating: trial — one request at a time until a success streak
	// (or a failure sends it back to quarantine).
	Reinstating
)

// String returns the state label used in /stats and metrics.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Quarantined:
		return "quarantined"
	case Reinstating:
		return "reinstating"
	}
	return "unknown"
}

// Config parameterizes a Set. The zero value is usable: all fields
// default to the values documented on them.
type Config struct {
	// Alpha is the EWMA smoothing factor for latency and error rate
	// (default 0.2 — a dozen samples to converge, a dozen to forget).
	Alpha float64
	// WindowCap bounds each tracker's exact-percentile window (default
	// 256 samples).
	WindowCap int
	// MinSamples is how many latency samples a tracker needs before its
	// EWMA is trusted for judgments (default 8). Below it the tracker
	// reports Healthy and score 1.
	MinSamples int
	// SuspectFactor and QuarantineFactor are the latency-ratio
	// thresholds: a lane whose EWMA exceeds factor × the set baseline
	// (best member EWMA) becomes Suspect (default 3) or Quarantined
	// (default 8). Hysteresis comes from the gap between them and from
	// the EWMA itself.
	SuspectFactor    float64
	QuarantineFactor float64
	// SuspectErrRate and QuarantineErrRate are the error-EWMA
	// thresholds (defaults 0.1 and 0.5).
	SuspectErrRate    float64
	QuarantineErrRate float64
	// Cooldown is the quarantine dwell before an endpoint is offered
	// reinstatement (default 2s).
	Cooldown time.Duration
	// ReinstateStreak is how many consecutive successes a Reinstating
	// endpoint needs to be Healthy again (default 3).
	ReinstateStreak int
	// ProbeInterval paces active probes on idle lanes (default 250ms).
	ProbeInterval time.Duration
	// HedgeFactor scales the set baseline EWMA into the hedged-prefill
	// deadline (default 4).
	HedgeFactor float64
	// DeadlineFactor scales the best healthy member's worst observed
	// latency into the adaptive per-op deadline (default 4).
	DeadlineFactor float64
	// Now overrides the clock (tests); default time.Now.
	Now func() time.Time
	// Metrics receives the genie_health_* series; nil keeps a private
	// registry.
	Metrics *obs.Registry
}

func (c *Config) fillDefaults() {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.2
	}
	if c.WindowCap <= 0 {
		c.WindowCap = 256
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.SuspectFactor <= 1 {
		c.SuspectFactor = 3
	}
	if c.QuarantineFactor <= c.SuspectFactor {
		c.QuarantineFactor = 8
		if c.QuarantineFactor <= c.SuspectFactor {
			c.QuarantineFactor = c.SuspectFactor * 2
		}
	}
	if c.SuspectErrRate <= 0 {
		c.SuspectErrRate = 0.1
	}
	if c.QuarantineErrRate <= 0 {
		c.QuarantineErrRate = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.ReinstateStreak <= 0 {
		c.ReinstateStreak = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.HedgeFactor <= 1 {
		c.HedgeFactor = 4
	}
	if c.DeadlineFactor <= 1 {
		c.DeadlineFactor = 4
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
}

// Set scores a group of endpoints against each other. All methods are
// safe for concurrent use.
type Set struct {
	cfg Config

	mu      sync.Mutex
	members map[string]*Tracker
}

// NewSet builds an empty scorer; endpoints register lazily via
// Endpoint.
func NewSet(cfg Config) *Set {
	cfg.fillDefaults()
	return &Set{cfg: cfg, members: make(map[string]*Tracker)}
}

// Endpoint returns (creating on first use) the tracker for name.
func (s *Set) Endpoint(name string) *Tracker {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.members[name]; ok {
		return t
	}
	t := &Tracker{
		set:  s,
		name: name,
		// A probe is due after ProbeInterval of idleness, not at first
		// sight: a fresh lane blocking in a ping exactly when traffic
		// arrives would trade its first admissions for a liveness fact
		// the first real request proves anyway.
		lastProbe: s.cfg.Now(),
		window:    obs.NewWindow(s.cfg.WindowCap),
		stateGauge: s.cfg.Metrics.Gauge("genie_health_state",
			"graded endpoint health (0 healthy, 1 suspect, 2 quarantined, 3 reinstating)",
			"endpoint", name),
		scoreGauge: s.cfg.Metrics.Gauge("genie_health_score_milli",
			"endpoint health score in thousandths (1000 = perfectly healthy)",
			"endpoint", name),
		probes: s.cfg.Metrics.Counter("genie_health_probes_total",
			"active health probes issued", "endpoint", name),
	}
	for st := Healthy; st <= Reinstating; st++ {
		t.transitions[st] = s.cfg.Metrics.Counter("genie_health_transitions_total",
			"health state transitions", "endpoint", name, "to", st.String())
	}
	t.scoreGauge.Set(1000)
	s.members[name] = t
	return t
}

// baselineEwma is the set-wide reference latency: the smallest member
// EWMA with enough samples. Zero when no member has converged yet.
func (s *Set) baselineEwma() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	best := 0.0
	for _, t := range s.members {
		t.mu.Lock()
		ok := t.samples >= s.cfg.MinSamples
		e := t.ewma
		t.mu.Unlock()
		if ok && e > 0 && (best == 0 || e < best) {
			best = e
		}
	}
	return best
}

// HedgeDeadline derives the hedged-prefill trigger from the set
// baseline: HedgeFactor × the best member EWMA, never below floor.
// Until a baseline exists the floor alone applies (a zero floor then
// disables hedging for the call).
func (s *Set) HedgeDeadline(floor time.Duration) time.Duration {
	base := s.baselineEwma()
	d := time.Duration(s.cfg.HedgeFactor * base)
	if d < floor {
		d = floor
	}
	return d
}

// OpDeadline derives the adaptive per-operation deadline that converts
// fail-slow into fail-stop: DeadlineFactor × the best healthy member's
// worst observed latency (min-of-max — the best lane's worst case
// covers legitimate outliers like long-prompt prefills), clamped to
// [floor, cap]. Zero cap means uncapped; until any healthy member has
// samples the result is the cap (no adaptive bound yet).
func (s *Set) OpDeadline(floor, cap time.Duration) time.Duration {
	s.mu.Lock()
	members := make([]*Tracker, 0, len(s.members))
	for _, t := range s.members {
		members = append(members, t)
	}
	s.mu.Unlock()
	best := time.Duration(0)
	for _, t := range members {
		if st := t.State(); st != Healthy {
			continue
		}
		if t.window.Len() < s.cfg.MinSamples {
			continue
		}
		_, max := t.window.Quantiles()
		if max > 0 && (best == 0 || max < best) {
			best = max
		}
	}
	if best == 0 {
		return cap
	}
	d := time.Duration(s.cfg.DeadlineFactor * float64(best))
	if d < floor {
		d = floor
	}
	if cap > 0 && d > cap {
		d = cap
	}
	return d
}

// Healthiest ranks the named endpoints by score (best first), breaking
// ties by name for determinism. Unknown names rank last with score 1.
func (s *Set) Healthiest(names []string) []string {
	type scored struct {
		name  string
		score float64
	}
	ranked := make([]scored, 0, len(names))
	for _, n := range names {
		sc := 1.0
		s.mu.Lock()
		t := s.members[n]
		s.mu.Unlock()
		if t != nil {
			sc = t.Score()
		}
		ranked = append(ranked, scored{n, sc})
	}
	// Insertion sort: the fan-in here is a handful of lanes.
	for i := 1; i < len(ranked); i++ {
		for j := i; j > 0; j-- {
			a, b := ranked[j-1], ranked[j]
			if b.score > a.score || (b.score == a.score && b.name < a.name) {
				ranked[j-1], ranked[j] = b, a
			} else {
				break
			}
		}
	}
	out := make([]string, len(ranked))
	for i, r := range ranked {
		out[i] = r.name
	}
	return out
}

// EndpointHealth is one tracker's point-in-time snapshot (the /stats
// "health" block and the /healthz degraded detail).
type EndpointHealth struct {
	State       string        `json:"state"`
	Score       float64       `json:"score"`
	EWMA        time.Duration `json:"ewma"`
	P50         time.Duration `json:"p50"`
	P99         time.Duration `json:"p99"`
	ErrRate     float64       `json:"err_rate"`
	Samples     int           `json:"samples"`
	Probes      int64         `json:"probes"`
	Transits    int64         `json:"transitions"`
	Quarantined bool          `json:"quarantined"`
}

// Snapshot reports every member's current health.
func (s *Set) Snapshot() map[string]EndpointHealth {
	s.mu.Lock()
	members := make(map[string]*Tracker, len(s.members))
	for n, t := range s.members {
		members[n] = t
	}
	s.mu.Unlock()
	out := make(map[string]EndpointHealth, len(members))
	for n, t := range members {
		out[n] = t.snapshot()
	}
	return out
}

// Tracker scores one endpoint. Obtain via Set.Endpoint.
type Tracker struct {
	set  *Set
	name string

	mu        sync.Mutex
	state     State
	ewma      float64 // nanoseconds
	errEwma   float64
	samples   int
	okStreak  int       // consecutive successes while Reinstating
	until     time.Time // quarantine dwell expiry
	lastProbe time.Time
	transits  int64

	window *obs.Window

	stateGauge  *obs.Gauge
	scoreGauge  *obs.Gauge
	transitions [4]*obs.Counter
	probes      *obs.Counter
}

// Name returns the endpoint label.
func (t *Tracker) Name() string { return t.name }

// Observe folds one completed operation into the score: its latency
// into the EWMA and percentile window, its outcome into the error
// EWMA, then re-evaluates the state machine. failed should carry the
// breaker's failure classification (an application-level remote error
// proves the endpoint alive and healthy-fast).
func (t *Tracker) Observe(d time.Duration, failed bool) {
	t.window.Observe(d)
	base := t.set.baselineEwma()
	alpha := t.set.cfg.Alpha
	t.mu.Lock()
	defer t.mu.Unlock()
	t.samples++
	if t.ewma == 0 {
		t.ewma = float64(d)
	} else {
		t.ewma = alpha*float64(d) + (1-alpha)*t.ewma
	}
	e := 0.0
	if failed {
		e = 1.0
	}
	t.errEwma = alpha*e + (1-alpha)*t.errEwma
	t.evaluate(base, failed)
	t.scoreGauge.Set(int64(1000 * t.scoreLocked(base)))
}

// ObserveProbe folds one active-probe outcome into the score. A probe
// round trip is a ping, not an exec — microseconds against the EWMA's
// milliseconds — so its latency is deliberately NOT folded into the
// latency EWMA or window (an idle fleet's probe stream would otherwise
// drag the set baseline toward ping RTT and make every working lane
// look slow). Probes feed the error EWMA, the state machine (including
// the reinstatement streak), and the probe counter.
func (t *Tracker) ObserveProbe(_ time.Duration, failed bool) {
	t.probes.Inc()
	base := t.set.baselineEwma()
	alpha := t.set.cfg.Alpha
	t.mu.Lock()
	defer t.mu.Unlock()
	e := 0.0
	if failed {
		e = 1.0
	}
	t.errEwma = alpha*e + (1-alpha)*t.errEwma
	t.evaluate(base, failed)
	t.scoreGauge.Set(int64(1000 * t.scoreLocked(base)))
}

// evaluate runs the state machine; callers hold t.mu. base is the set
// baseline EWMA (0 = no baseline yet).
func (t *Tracker) evaluate(base float64, failed bool) {
	now := t.set.cfg.Now()
	t.reapLocked(now)
	switch t.state {
	case Reinstating:
		if failed {
			t.toState(Quarantined)
			t.until = now.Add(t.set.cfg.Cooldown)
			t.okStreak = 0
			return
		}
		t.okStreak++
		if t.okStreak >= t.set.cfg.ReinstateStreak {
			// Forget the sick-era latency: the streak's samples are the
			// endpoint's new reality, and a stale 50×-inflated EWMA would
			// re-quarantine a recovered lane on its first judged call.
			t.ewma = 0
			t.errEwma = 0
			t.samples = 0
			t.okStreak = 0
			t.toState(Healthy)
		}
		return
	case Quarantined:
		return // only the dwell timer (reapLocked) moves it
	}
	// Healthy / Suspect: judge by error rate first (absolute), then by
	// latency ratio against the set baseline (relative).
	if t.samples < t.set.cfg.MinSamples {
		return
	}
	cfg := t.set.cfg
	ratio := 0.0
	if base > 0 {
		ratio = t.ewma / base
	}
	switch {
	case t.errEwma >= cfg.QuarantineErrRate || ratio >= cfg.QuarantineFactor:
		t.toState(Quarantined)
		t.until = now.Add(cfg.Cooldown)
	case t.errEwma >= cfg.SuspectErrRate || ratio >= cfg.SuspectFactor:
		if t.state != Suspect {
			t.toState(Suspect)
		}
	default:
		if t.state != Healthy {
			t.toState(Healthy)
		}
	}
}

// reapLocked moves an expired quarantine to Reinstating; callers hold
// t.mu.
func (t *Tracker) reapLocked(now time.Time) {
	if t.state == Quarantined && !now.Before(t.until) {
		t.toState(Reinstating)
		t.okStreak = 0
	}
}

// toState transitions and updates instrumentation; callers hold t.mu.
func (t *Tracker) toState(s State) {
	if t.state == s {
		return
	}
	t.state = s
	t.transits++
	t.stateGauge.Set(int64(s))
	if c := t.transitions[s]; c != nil {
		c.Inc()
	}
}

// State returns the current grade, applying the quarantine dwell timer.
func (t *Tracker) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reapLocked(t.set.cfg.Now())
	return t.state
}

// Score is the endpoint's composite health in (0,1]: the latency ratio
// against the set baseline (clamped to ≤1) damped by the error rate. A
// tracker without enough samples scores 1; a Quarantined tracker
// scores 0.
func (t *Tracker) Score() float64 {
	base := t.set.baselineEwma()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reapLocked(t.set.cfg.Now())
	return t.scoreLocked(base)
}

func (t *Tracker) scoreLocked(base float64) float64 {
	if t.state == Quarantined {
		return 0
	}
	s := 1.0
	if t.samples >= t.set.cfg.MinSamples && base > 0 && t.ewma > base {
		s = base / t.ewma
	}
	s *= 1 - t.errEwma
	if s <= 0 {
		s = 0.001 // non-quarantined endpoints stay selectable as last resort
	}
	return s
}

// ProbeDue reports whether an idle-lane active probe should fire now,
// and if so claims the probe slot (callers that get true must probe and
// report via ObserveProbe). Quarantined endpoints stay probed — the
// probe stream is what lets Reinstating judge recovery.
func (t *Tracker) ProbeDue() bool {
	now := t.set.cfg.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if now.Sub(t.lastProbe) < t.set.cfg.ProbeInterval {
		return false
	}
	t.lastProbe = now
	return true
}

// ProbeWait returns how long until the next probe is due (minimum 1ms
// so an idle loop never spins).
func (t *Tracker) ProbeWait() time.Duration {
	now := t.set.cfg.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	w := t.set.cfg.ProbeInterval - now.Sub(t.lastProbe)
	if w < time.Millisecond {
		w = time.Millisecond
	}
	return w
}

// Quantile reads one exact quantile from the latency window.
func (t *Tracker) Quantile(q float64) time.Duration {
	out, _ := t.window.Quantiles(q)
	return out[0]
}

// snapshot builds the /stats view.
func (t *Tracker) snapshot() EndpointHealth {
	base := t.set.baselineEwma()
	qs, _ := t.window.Quantiles(0.50, 0.99)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reapLocked(t.set.cfg.Now())
	return EndpointHealth{
		State:       t.state.String(),
		Score:       t.scoreLocked(base),
		EWMA:        time.Duration(t.ewma),
		P50:         qs[0],
		P99:         qs[1],
		ErrRate:     t.errEwma,
		Samples:     t.samples,
		Probes:      t.probes.Value(),
		Transits:    t.transits,
		Quarantined: t.state == Quarantined,
	}
}
