package runtime

import (
	"context"
	"fmt"

	"genie/internal/transport"
)

// Failover configures endpoint-loss recovery for a runner's sessions.
// When an execution fails with a rebindable error — the conn died, the
// call timed out, or the server reports lost state — the runner invokes
// Rebind, which must repair or replace the runner's endpoint (typically
// a lineage.TrackedEndpoint failing over to a replacement from the
// cluster pool, replaying exactly the lost KV chains), and then
// reissues the failed call. Deterministic replay makes the reissued
// call bind bit-identical state, so recovered sessions continue their
// token sequences exactly.
type Failover struct {
	// Rebind repairs or replaces the runner's endpoint after err. A nil
	// return means the failed call may be reissued. Called serially per
	// execution attempt; implementations guard their own state.
	Rebind func(err error) error
	// MaxRebinds bounds rebind attempts per execution (default 1).
	MaxRebinds int
	// Rebindable classifies errors that justify a rebind. Default:
	// transient availability failures (transport.Retryable) and
	// server-alive state loss (transport.IsStateLoss). Application
	// errors and protocol violations are final.
	Rebindable func(error) bool
	// OnRebind, when set, observes each successful rebind (metrics).
	OnRebind func(cause error)
}

func (f *Failover) maxRebinds() int {
	if f.MaxRebinds > 0 {
		return f.MaxRebinds
	}
	return 1
}

func (f *Failover) rebindable(err error) bool {
	if f.Rebindable != nil {
		return f.Rebindable(err)
	}
	return transport.Retryable(err) || transport.IsStateLoss(err)
}

// execFT is execEP with failover: on a rebindable failure it asks the
// configured Failover to repair the endpoint and reissues the call, up
// to the rebind budget. Non-idempotent executions stay safe because
// rebind replays state from lineage provenance — the reissued call
// binds the recovered (pre-failure) versions, not a half-applied one.
func (r *LLMRunner) execFT(ctx context.Context, x *transport.Exec) (*transport.ExecOK, error) {
	ok, err := execEP(ctx, r.EP, x)
	f := r.Failover
	if f == nil || f.Rebind == nil {
		return ok, err
	}
	for rebinds := 0; err != nil && rebinds < f.maxRebinds() && f.rebindable(err); {
		rebinds++
		if rerr := f.Rebind(err); rerr != nil {
			return nil, fmt.Errorf("runtime: failover after %q: %w", err, rerr)
		}
		if f.OnRebind != nil {
			f.OnRebind(err)
		}
		ok, err = execEP(ctx, r.EP, x)
	}
	return ok, err
}
