package pool

import (
	"context"
	"fmt"

	"genie/internal/models"
	"genie/internal/obs"
	"genie/internal/runtime"
	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// session executes one generation across the pool's shards. It
// implements runtime.Strategy, so the serving engine drives it through
// the ordinary Session prefill/step API: each forward pass walks the
// shard plan segment by segment, shipping the boundary activation to
// the next member and keeping each layer's KV resident (and
// lineage-tracked) on the layer's owner.
type session struct {
	mgr   *Manager
	scope string
	hist  int
}

// newStrategy is the runtime.LLMRunner.NewStrategy hook. It fails fast
// when the pool has no feasible plan, so infeasibility surfaces at
// session creation instead of mid-stream.
func (m *Manager) newStrategy(_ context.Context, _ runtime.Mode, scope string) (runtime.Strategy, error) {
	if _, err := m.planSnapshot(); err != nil {
		return nil, err
	}
	return &session{mgr: m, scope: scope}, nil
}

func (s *session) Prefill(ctx context.Context, prompt []int64) (int64, error) {
	tok, err := s.forward(ctx, prompt, 0)
	if err != nil {
		return 0, err
	}
	s.hist = len(prompt)
	return tok, nil
}

func (s *session) Step(ctx context.Context, tok int64) (int64, error) {
	next, err := s.forward(ctx, []int64{tok}, s.hist)
	if err != nil {
		return 0, err
	}
	s.hist++
	return next, nil
}

func (s *session) Close() error { return s.mgr.freeScoped(s.scope) }

// forward runs one full pass (prefill when histLen is 0, one decode
// step otherwise) across the shard plan. On a member loss it reports
// the failure — the pool evicts and re-places — and resumes from the
// failed segment's first layer against the repaired plan: earlier
// segments already appended this step's KV rows on their (surviving)
// members, and the failed exec was never recorded, so lineage replay
// re-homes exactly the pre-failure state.
func (s *session) forward(ctx context.Context, tokens []int64, histLen int) (int64, error) {
	m := s.mgr
	model := m.cfg.Model
	L := model.Cfg.Layers
	layer := 0
	var x *tensor.Tensor
	retries := 0
	for {
		// A repaired-plan retry must not outlive the request: the caller's
		// deadline/cancel is the only thing bounding a churn storm.
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		plan, err := m.planSnapshot()
		if err != nil {
			return 0, err
		}
		seg := plan.shardFrom(layer)
		spec := models.SegmentSpec{
			WithEmbed: layer == 0,
			Tokens:    tokens,
			StartPos:  histLen,
			X:         x,
			LoLayer:   seg.Lo,
			HiLayer:   seg.Hi,
			WithHead:  seg.Hi == L,
			HistLen:   histLen,
		}
		b, so := model.BuildSegment(spec)
		ex := &transport.Exec{Graph: b.Graph(), Keep: map[srg.NodeID]string{}}
		for _, n := range b.Graph().Nodes() {
			if n.Op != "input" {
				continue
			}
			if n.Residency == srg.ResidencyStatefulKVCache {
				// Resident KV by handle; ExecTracked fills the epoch from
				// lineage, which is what lets a segment re-issue cleanly
				// right after its cache migrated to a new owner.
				ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Key: s.scope + n.Ref})
				continue
			}
			data, _ := b.InputData(n.Ref)
			ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Inline: data})
		}
		for i, l := range so.Layers {
			ex.Keep[so.CacheK[i]] = s.scope + models.CacheRef(l, "k")
			ex.Keep[so.CacheV[i]] = s.scope + models.CacheRef(l, "v")
		}
		if spec.WithHead {
			ex.Want = []srg.NodeID{so.LastLogits, so.NextToken}
		} else {
			ex.Want = []srg.NodeID{so.Out}
		}

		_, span := obs.StartSpan(ctx, "pool.segment")
		span.SetAttr("member", seg.Member)
		span.SetAttrInt("lo", int64(seg.Lo))
		span.SetAttrInt("hi", int64(seg.Hi))
		ok, err := m.execOn(seg.Member, ex)
		span.End()
		if err != nil {
			if retries >= m.cfg.SegmentRetries {
				return 0, fmt.Errorf("pool: segment [%d,%d) on %q: %w", seg.Lo, seg.Hi, seg.Member, err)
			}
			retries++
			if !m.reportExecFailure(seg.Member, plan.Version) {
				return 0, fmt.Errorf("pool: segment [%d,%d) on %q failed and the pool could not repair: %w",
					seg.Lo, seg.Hi, seg.Member, err)
			}
			continue // same layer, same x, repaired plan
		}
		if spec.WithHead {
			return ok.Results[so.NextToken].I64()[0], nil
		}
		x = ok.Results[so.Out]
		m.noteCrossShard(int64(x.NumBytes()))
		layer = seg.Hi
	}
}
