// churn.go is everything plan.go is not allowed to be: in-place plan
// mutation and stale snapshot reads across a rebuild section.
package planverdata

import "genie/internal/pool"

type mgr struct {
	plan *pool.ShardPlan
}

// swapPlan replaces the active plan — the rebuild section planver's
// staleness rule keys off (its summary says RebuildsPlan).
func (m *mgr) swapPlan(pl *pool.ShardPlan) {
	m.plan = pl
}

// mutateInPlace edits a live plan outside the constructor file.
func (m *mgr) mutateInPlace() {
	m.plan.Version++    // want "ShardPlan field Version assigned outside the plan constructors"
	m.plan.CutEdges = 0 // want "ShardPlan field CutEdges assigned outside the plan constructors"
}

// staleRead keeps using a snapshot captured before the rebuild: the
// membership epoch it describes may be gone.
func (m *mgr) staleRead(owners []string) string {
	snap := m.plan
	m.swapPlan(build(snap.Version+1, owners))
	return snap.Owners[0] // want "plan snapshot \"snap\" read after swapPlan rebuilt the plan"
}

// freshReread re-captures after the rebuild; no finding.
func (m *mgr) freshReread(owners []string) string {
	snap := m.plan
	m.swapPlan(build(snap.Version+1, owners))
	snap = m.plan
	return snap.Owners[0]
}

// argsBeforeEffect: the rebuild call's own arguments are read before
// the swap happens — evaluation order says they are not stale reads.
func (m *mgr) argsBeforeEffect(owners []string) {
	snap := m.plan
	m.swapPlan(build(snap.Version+1, owners))
}
