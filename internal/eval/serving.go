package eval

import (
	"fmt"
	"sort"
	"time"

	"genie/internal/metrics"
	"genie/internal/models"
	"genie/internal/simnet"
	"genie/internal/workload"
)

// ServingPolicy selects how the serving simulation schedules a request
// stream over the accelerator pool — the system-level consequence of the
// paper's semantic annotations (§3.6).
type ServingPolicy int

// Serving policies under comparison.
const (
	// ServeBlindFCFS runs each request in arrival order, whole-request
	// at a time, on the least-loaded device; no phase knowledge, no
	// batching (the semantics-blind cluster baseline).
	ServeBlindFCFS ServingPolicy = iota
	// ServePhaseAware splits prefill and decode across two device pools
	// sized by phase demand (compute-bound prefills don't block
	// memory-bound decodes).
	ServePhaseAware
	// ServePhaseAwareBatched additionally batches concurrent same-model
	// decode steps (cross-tenant orchestration).
	ServePhaseAwareBatched
)

// String implements fmt.Stringer.
func (p ServingPolicy) String() string {
	switch p {
	case ServeBlindFCFS:
		return "blind_fcfs"
	case ServePhaseAware:
		return "phase_aware"
	case ServePhaseAwareBatched:
		return "phase_aware_batched"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ServingConfig parameterizes the serving simulation.
type ServingConfig struct {
	Model   models.GPTConfig
	Devices int
	// Trace drives arrivals; decode lengths and prompt lengths vary per
	// request.
	Trace workload.LLMTrace
	Seed  int64
	// BatchWindow is how long the batched policy waits to accumulate
	// same-model decode steps.
	BatchWindow time.Duration
}

// ServingResult reports the stream's latency distribution and makespan.
type ServingResult struct {
	Policy   ServingPolicy
	Requests int
	Makespan time.Duration
	MeanLat  time.Duration
	P95Lat   time.Duration
	// P95TTFT is the 95th-percentile time to first token (prefill
	// completion) — the interactive-latency metric a phase-split pool
	// protects even under decode-heavy load.
	P95TTFT    time.Duration
	Throughput float64 // requests/sec over the makespan
}

// DefaultServingConfig is the A8 setup: GPT-J-scale requests on a small
// pool with RDMA-class transport (the regime where scheduling, not RPC
// overhead, dominates).
func DefaultServingConfig() ServingConfig {
	return ServingConfig{
		Model:   models.GPTJ6B,
		Devices: 4,
		Trace: workload.LLMTrace{
			Requests: 64, Vocab: 50400,
			PromptMin: 32, PromptMax: 256,
			DecodeMin: 16, DecodeMax: 128,
			MeanInterarrival: 120 * time.Millisecond,
		},
		Seed:        7,
		BatchWindow: 25 * time.Millisecond,
	}
}

// RunServing simulates the trace under the given policy. The device
// model is the calibrated A100; phases are priced with the same roofline
// the rest of the evaluation uses.
func RunServing(cfg ServingConfig, policy ServingPolicy) ServingResult {
	reqs := cfg.Trace.Generate(cfg.Seed)
	spec := A100GPTJUnbatched
	m := cfg.Model

	prefillCost := func(r workload.LLMRequest) time.Duration {
		return spec.KernelTime(m.PrefillFLOPs(len(r.Prompt)), m.WeightBytes()+m.KVBytes(len(r.Prompt)))
	}
	decodeStepCost := func(hist int) time.Duration {
		return spec.KernelTime(m.DecodeFLOPs(hist), m.DecodeBytesTouched(hist))
	}

	devs := make([]*simnet.Resource, cfg.Devices)
	for i := range devs {
		devs[i] = simnet.NewResource(fmt.Sprint("gpu", i))
	}
	leastLoaded := func(pool []*simnet.Resource) *simnet.Resource {
		best := pool[0]
		for _, d := range pool[1:] {
			if d.FreeAt() < best.FreeAt() {
				best = d
			}
		}
		return best
	}

	finish := make([]time.Duration, len(reqs))
	ttft := make([]time.Duration, len(reqs))
	switch policy {
	case ServeBlindFCFS:
		// Whole request (prefill + full decode) as one exclusive job: a
		// request queued behind long decodes waits for all of them before
		// emitting its first token.
		for i, r := range reqs {
			total := prefillCost(r)
			for s := 0; s < r.Decode; s++ {
				total += decodeStepCost(len(r.Prompt) + s)
			}
			d := leastLoaded(devs)
			start, end := d.ReserveAt(r.Arrival, total)
			finish[i] = end
			ttft[i] = start + prefillCost(r) - r.Arrival
		}

	case ServePhaseAware, ServePhaseAwareBatched:
		// Pool split sized by phase demand (the elastic-scaling decision
		// of §3.6): total prefill vs decode work in the trace determines
		// how many devices each phase pool gets, at least one each.
		var prefillWork, decodeWork time.Duration
		for _, r := range reqs {
			prefillWork += prefillCost(r)
			for s := 0; s < r.Decode; s++ {
				decodeWork += decodeStepCost(len(r.Prompt) + s)
			}
		}
		nPrefill := 1
		if total := prefillWork + decodeWork; total > 0 && cfg.Devices > 1 {
			nPrefill = int(float64(cfg.Devices) * float64(prefillWork) / float64(total))
			if nPrefill < 1 {
				nPrefill = 1
			}
			if nPrefill > cfg.Devices-1 {
				nPrefill = cfg.Devices - 1
			}
		}
		prefillPool := devs[:nPrefill]
		decodePool := devs[nPrefill:]
		if len(decodePool) == 0 {
			decodePool = devs
		}
		batch := 1
		if policy == ServePhaseAwareBatched {
			// Effective decode batching from concurrent same-model
			// requests: estimate degree from arrival density vs decode
			// duration, capped at 8.
			batch = estimateBatchDegree(reqs, decodeStepCost, cfg.BatchWindow)
		}
		for i, r := range reqs {
			p := leastLoaded(prefillPool)
			_, pEnd := p.ReserveAt(r.Arrival, prefillCost(r))
			ttft[i] = pEnd - r.Arrival
			var total time.Duration
			for s := 0; s < r.Decode; s++ {
				total += decodeStepCost(len(r.Prompt) + s)
			}
			if batch > 1 {
				// Weight reads amortize across the batch; per-request KV
				// reads do not. Approximate by scaling the weight-bound
				// share of each step.
				total = time.Duration(float64(total) * batchScale(m, len(r.Prompt), batch))
			}
			d := leastLoaded(decodePool)
			_, end := d.ReserveAt(pEnd, total)
			finish[i] = end
		}
	}

	var res ServingResult
	res.Policy = policy
	res.Requests = len(reqs)
	lats := make([]time.Duration, len(reqs))
	var sum time.Duration
	for i, r := range reqs {
		lats[i] = finish[i] - r.Arrival
		sum += lats[i]
		if finish[i] > res.Makespan {
			res.Makespan = finish[i]
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	sort.Slice(ttft, func(i, j int) bool { return ttft[i] < ttft[j] })
	res.MeanLat = sum / time.Duration(len(reqs))
	res.P95Lat = metrics.Percentile(lats, 0.95)
	res.P95TTFT = metrics.Percentile(ttft, 0.95)
	if res.Makespan > 0 {
		res.Throughput = float64(len(reqs)) / res.Makespan.Seconds()
	}
	return res
}

// estimateBatchDegree approximates how many decodes overlap in a batch
// window given the arrival density.
func estimateBatchDegree(reqs []workload.LLMRequest, stepCost func(int) time.Duration, window time.Duration) int {
	if len(reqs) < 2 {
		return 1
	}
	span := reqs[len(reqs)-1].Arrival - reqs[0].Arrival
	if span <= 0 {
		return 8
	}
	// Mean decode duration per request.
	var mean time.Duration
	for _, r := range reqs {
		var d time.Duration
		for s := 0; s < r.Decode; s++ {
			d += stepCost(len(r.Prompt) + s)
		}
		mean += d
	}
	mean /= time.Duration(len(reqs))
	concurrent := float64(mean) * float64(len(reqs)) / float64(span)
	deg := int(concurrent)
	if deg < 1 {
		deg = 1
	}
	if deg > 8 {
		deg = 8
	}
	return deg
}

// batchScale returns the per-request decode-time multiplier when batch
// same-model steps share one weight read.
func batchScale(m models.GPTConfig, hist, batch int) float64 {
	w := float64(m.WeightBytes())
	kv := float64(m.KVBytes(hist))
	single := w + kv
	batched := w + kv*float64(batch)
	return batched / (single * float64(batch))
}
