// Command faulttolerance demonstrates §3.5's lineage-based recovery: a
// GPT decode loop runs against one backend with weights and KV caches
// tracked by the lineage manager; mid-generation the server crashes
// (losing all resident state); the manager detects the stale epochs,
// replays exactly the lost provenance chains onto a standby backend, and
// the loop continues — producing the same tokens a failure-free run
// would, without the client recomputing anything itself.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"genie"
	"genie/internal/models"
	"genie/internal/nn"
	"genie/internal/srg"
	"genie/internal/transport"
)

func main() {
	primarySrv, primary := startServer()
	standbySrv, standby := startServer()
	_ = standbySrv

	mgr := genie.NewLineageManager()
	mgr.RegisterEndpoint("primary", primary)
	mgr.RegisterEndpoint("standby", standby)

	rng := rand.New(rand.NewSource(2026))
	model := genie.NewGPTModel(rng, genie.TinyGPT)
	prompt := []int64{9, 41, 7, 23, 60}

	// Install weights under lineage tracking.
	pb, _ := model.BuildPrefill(prompt)
	for _, n := range pb.Graph().Nodes() {
		if n.Op == "param" {
			data, _ := pb.ParamData(n.Ref)
			if err := mgr.UploadTracked("primary", n.Ref, data); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("installed %d weight objects on primary\n", len(pb.Graph().Params()))

	ep := "primary"
	step := func(b *genie.Builder, out models.LLMOutputs) int64 {
		ex := &transport.Exec{Graph: b.Graph(), Keep: map[srg.NodeID]string{}}
		for _, n := range b.Graph().Nodes() {
			if n.Op != "input" {
				continue
			}
			if n.Residency == genie.ResidencyStatefulKVCache {
				ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Key: n.Ref})
				continue
			}
			data, _ := b.InputData(n.Ref)
			ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Inline: data})
		}
		for i := range out.CacheK {
			ex.Keep[out.CacheK[i]] = models.CacheRef(i, "k")
			ex.Keep[out.CacheV[i]] = models.CacheRef(i, "v")
		}
		ex.Want = []srg.NodeID{out.NextToken}
		ok, err := mgr.ExecTracked(ep, ex)
		if err != nil {
			log.Fatal(err)
		}
		return ok.Results[out.NextToken].I64()[0]
	}

	b, out := model.BuildPrefill(prompt)
	next := step(b, out)
	hist := len(prompt)
	var tokens []int64

	decode := func() {
		tokens = append(tokens, next)
		db, dout := model.BuildDecodeStep(next, hist, hist, emptyCaches(model))
		next = step(db, dout)
		hist++
	}

	decode()
	decode()
	decode()
	fmt.Printf("generated %v, then PRIMARY CRASHES (all resident state lost)\n", tokens)
	primarySrv.Crash()

	start := time.Now()
	lost, err := mgr.DetectLost("primary")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lineage detected %d lost objects (weights + per-layer caches)\n", len(lost))
	if err := mgr.Recover(lost, "standby"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed provenance onto standby in %v (wall clock, real replay)\n",
		time.Since(start).Round(time.Millisecond))

	ep = "standby"
	decode()
	decode()
	decode()
	fmt.Printf("resumed generation: %v\n", tokens)

	// Cross-check against an uninterrupted run.
	want := referenceRun(prompt, len(tokens))
	for i := range want {
		if tokens[i] != want[i] {
			log.Fatalf("recovered run diverged at %d: %v vs %v", i, tokens, want)
		}
	}
	fmt.Println("tokens identical to a failure-free run — decode recovered without restarting prefill at the client")
}

func startServer() (*genie.Server, *genie.Client) {
	srv := genie.NewServer(genie.A100)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = genie.Serve(srv, l) }()
	client, err := genie.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	return srv, client
}

func emptyCaches(m *genie.GPT) []*nn.KVCache {
	caches := make([]*nn.KVCache, m.Cfg.Layers)
	for i := range caches {
		caches[i] = &nn.KVCache{}
	}
	return caches
}

func referenceRun(prompt []int64, steps int) []int64 {
	srv := genie.NewServer(genie.A100)
	_ = srv
	rng := rand.New(rand.NewSource(2026))
	model := genie.NewGPTModel(rng, genie.TinyGPT)
	b, out := model.BuildPrefill(prompt)
	vals, err := genie.ExecuteLocal(b)
	if err != nil {
		log.Fatal(err)
	}
	caches := emptyCaches(model)
	for i := range out.CacheK {
		caches[i].Append(vals[out.CacheK[i]], vals[out.CacheV[i]])
	}
	next := vals[out.NextToken].I64()[0]
	hist := len(prompt)
	var tokens []int64
	for s := 0; s < steps; s++ {
		tokens = append(tokens, next)
		db, dout := model.BuildDecodeStep(next, hist, hist, caches)
		dvals, err := genie.ExecuteLocal(db)
		if err != nil {
			log.Fatal(err)
		}
		for i := range caches {
			caches[i].K = dvals[dout.CacheK[i]]
			caches[i].V = dvals[dout.CacheV[i]]
		}
		next = dvals[dout.NextToken].I64()[0]
		hist++
	}
	return tokens
}
