package serve

import (
	"context"
	"errors"
	"fmt"
	goruntime "runtime"
	"sync/atomic"
	"time"

	"genie/internal/health"
	"genie/internal/obs"
	"genie/internal/runtime"
	"genie/internal/transport"
)

// lane is one backend's dispatch loop. A lane owns its runner's
// connection outright (the transport is a synchronous RPC channel), so
// everything on a backend — prefills and decode steps of every resident
// request — executes from this single goroutine. Continuous batching is
// the loop structure itself: each iterate() is one step boundary where
// finished requests leave, queued requests join (prefill), and every
// active request advances exactly one decode step.
//
// Every lane carries a circuit breaker for its endpoint: consecutive
// transport-level failures open it, an open lane stops pulling from the
// queue (its requests re-queue to healthy lanes), and after the
// cooldown a single probe request decides whether it rejoins.
//
// With Config.Health set a lane additionally carries a fail-slow
// tracker: per-op latencies and failures feed it, a Suspect lane
// demotes itself (admitting only when healthy capacity is saturated),
// a Quarantined lane drains its batch back to the queue through the
// ordinary failover path, a Reinstating lane trials one request at a
// time, and an idle lane pings its endpoint so recovery is observed
// without risking real traffic.
type lane struct {
	e       *Engine
	name    string
	runner  *runtime.LLMRunner
	breaker *transport.Breaker
	tracker *health.Tracker
	active  []*activeReq
	activeN atomic.Int32
	wake    chan struct{}

	// failures counts backend-loss errors observed on this lane;
	// requeues counts requests this lane handed back to the queue. Both
	// surface per-backend in /stats.
	failures atomic.Int64
	requeues atomic.Int64
}

func newLane(e *Engine, name string, r *runtime.LLMRunner) *lane {
	l := &lane{e: e, name: name, runner: r, wake: make(chan struct{}, 1)}
	l.breaker = transport.NewBreaker(transport.BreakerConfig{
		Threshold: e.cfg.BreakerThreshold,
		Cooldown:  e.cfg.BreakerCooldown,
		Now:       e.clock.Now,
		// The default classifier ignores remote errors (an application
		// error doesn't mean the backend is down), but serving lanes must
		// also trip on server-side state loss — a crashed backend answers
		// politely while having lost every resident object.
		IsFailure: func(err error) bool {
			if err == nil || errors.Is(err, context.Canceled) {
				return false
			}
			return lostBackend(err) || transport.IsFrameError(err)
		},
	})
	l.breaker.Instrument(e.cfg.Metrics, name)
	if e.cfg.Health != nil {
		l.tracker = e.cfg.Health.Endpoint(name)
	}
	return l
}

// run is the production loop: iterate while there is work, sleep until
// nudged otherwise. The Gosched between iterations keeps admission
// live on small GOMAXPROCS: a busy lane ping-ponging with an
// in-process backend would otherwise monopolize the scheduler and
// starve Submit callers, serializing a burst that should batch.
func (l *lane) run() {
	defer l.e.wg.Done()
	for {
		if l.iterate() {
			goruntime.Gosched()
			continue
		}
		l.maybeProbe()
		if wait := l.idleWait(); wait > 0 {
			// Wake on our own: when the breaker's cooldown lapses with work
			// still queued, and on the health prober's cadence.
			t := time.NewTimer(wait)
			select {
			case <-l.wake:
				t.Stop()
			case <-t.C:
			case <-l.e.stop:
				t.Stop()
				return
			}
			continue
		}
		select {
		case <-l.wake:
		case <-l.e.stop:
			return
		}
	}
}

// idleWait returns how long an idle lane should sleep before rechecking
// the queue on its own; 0 means sleep until nudged. Nonzero while this
// lane's breaker blocks admission and work is waiting — the one state
// where no future nudge is guaranteed to arrive — and, with health
// scoring on, while the active prober needs the lane awake on its
// cadence (probes are what let a Quarantined endpoint earn its way
// back without real traffic).
func (l *lane) idleWait() time.Duration {
	var probeWait time.Duration
	if l.tracker != nil {
		probeWait = l.tracker.ProbeWait()
	}
	breakerWait := time.Duration(0)
	if l.breaker.State() != transport.BreakerClosed {
		l.e.mu.Lock()
		queued := l.e.queues.depth() > 0
		l.e.mu.Unlock()
		if queued {
			breakerWait = l.breaker.RetryAfter()
			if breakerWait <= 0 {
				breakerWait = 10 * time.Millisecond
			}
		}
	}
	switch {
	case probeWait > 0 && breakerWait > 0 && probeWait < breakerWait:
		return probeWait
	case breakerWait > 0:
		return breakerWait
	}
	return probeWait
}

// maybeProbe issues one active health probe when the lane is idle and
// the prober's cadence says one is due. The probe is a transport ping
// — cheap, stateless, and safe against a quarantined endpoint — whose
// outcome feeds the error side of the score (ping RTT is not exec
// latency, so the latency EWMA is left alone).
func (l *lane) maybeProbe() {
	if l.tracker == nil || len(l.active) > 0 || !l.tracker.ProbeDue() {
		return
	}
	p, ok := l.runner.EP.(interface {
		PingCtx(context.Context) (time.Duration, error)
	})
	if !ok {
		return
	}
	// A probe belongs to no request; it is the lane's own background
	// activity, so a root context bounded by the probe timeout is right.
	//lint:ignore ctxflow probe is lane-owned, not request-scoped
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	t0 := l.e.clock.Now()
	_, err := p.PingCtx(ctx)
	cancel()
	l.tracker.ObserveProbe(l.e.clock.Now().Sub(t0), err != nil)
}

// iterate executes one step boundary; it reports whether any work was
// done (false = the lane is idle and may sleep).
func (l *lane) iterate() bool {
	worked := l.drainQuarantined()
	worked = l.admit() || worked
	if len(l.active) > 0 {
		worked = true
		stepped := 0
		keep := l.active[:0]
		for _, ar := range l.active {
			didStep, stay := l.advance(ar)
			if didStep {
				stepped++
			}
			if stay {
				keep = append(keep, ar)
			}
		}
		for i := len(keep); i < len(l.active); i++ {
			l.active[i] = nil
		}
		l.active = keep
		l.activeN.Store(int32(len(l.active)))
		l.e.stats.occupancy(stepped)
	}
	l.e.maybeDrained()
	return worked
}

// drainQuarantined hands every active request of a quarantined lane
// back to the admission queue through the ordinary failover path: the
// session is closed, lineage replay regenerates the prefix on whichever
// healthy lane picks the request up, and emit suppresses the tokens the
// client already holds — no state loss, and no client retry budget
// burned (quarantine is the engine's decision, not the backend's
// failure). Reports whether anything was drained.
func (l *lane) drainQuarantined() bool {
	if l.tracker == nil || len(l.active) == 0 {
		return false
	}
	if l.tracker.State() != health.Quarantined {
		return false
	}
	for _, ar := range l.active {
		if l.retireIfDone(ar) {
			continue
		}
		l.requeue(ar)
	}
	for i := range l.active {
		l.active[i] = nil
	}
	l.active = l.active[:0]
	l.activeN.Store(0)
	return true
}

// admissible applies the graded health gate ahead of the binary breaker
// one: Quarantined admits nothing, Reinstating trials one request at a
// time, Suspect yields to healthy lanes with room (demotion, not
// removal — a merely-slow lane still serves overflow).
func (l *lane) admissible() bool {
	if l.tracker == nil {
		return true
	}
	switch l.tracker.State() {
	case health.Quarantined:
		return false
	case health.Reinstating:
		return len(l.active) == 0
	case health.Suspect:
		return !l.e.healthyRoomElsewhere(l)
	}
	return true
}

// admit moves queued requests into the running batch until it is full,
// running each newcomer's prefill. An open breaker stops admission cold
// (queued work stays for healthy lanes); once the cooldown lapses the
// first dequeued request doubles as the half-open probe, carrying the
// breaker's probe identity so only its prefill outcome settles the
// probe. Reports whether anything was admitted or retired.
func (l *lane) admit() bool {
	worked := false
	for len(l.active) < l.e.cfg.MaxBatch {
		if l.breaker.State() == transport.BreakerOpen && l.breaker.RetryAfter() > 0 {
			break // cooling down; don't touch the queue
		}
		if !l.admissible() {
			break // health-demoted; queued work stays for healthier lanes
		}
		ar := l.e.dequeue()
		if ar == nil {
			break
		}
		worked = true
		// Queue wait ends the moment a lane picks the request up.
		ar.qspan.End()
		ar.qspan = nil
		if l.retireIfDone(ar) {
			continue
		}
		probe, err := l.breaker.Allow()
		if err != nil {
			// Lost the probe-slot race; hand the request back untouched.
			_, ar.qspan = obs.StartSpan(ar.tctx, "serve.queue")
			l.e.requeue(l, ar)
			break
		}
		ar.bprobe = probe
		if !l.prefill(ar) {
			continue // retired at admission (cancelled/expired/failed/re-queued)
		}
		l.active = append(l.active, ar)
		l.e.noteJoin(ar)
	}
	l.activeN.Store(int32(len(l.active)))
	return worked
}

// opCtx bounds one remote operation with the engine's per-op timeout —
// tightened, when health scoring is on, to the adaptive deadline
// derived from healthy-peer latency. The adaptive bound is what turns
// fail-slow into fail-stop: an op a browned-out endpoint would serve
// 50× slow is cancelled a few multiples past the healthy worst case,
// surfaces as a retryable timeout, and the request fails over instead
// of wedging the lane for the op's full duration.
func (l *lane) opCtx(parent context.Context) (context.Context, context.CancelFunc) {
	if parent == nil {
		// Submit tolerates a nil caller context (retireIfDone guards for
		// it); WithTimeout does not, so mint the root here.
		//lint:ignore ctxflow nil-context fallback, not a propagation hole
		parent = context.Background()
	}
	timeout := l.e.cfg.OpTimeout
	if l.e.cfg.Health != nil {
		timeout = l.e.cfg.Health.OpDeadline(l.e.cfg.HealthOpFloor, timeout)
	}
	if timeout <= 0 {
		return parent, func() {}
	}
	return context.WithTimeout(parent, timeout)
}

// prefill runs a newcomer's prompt phase; it reports whether the
// request joined the batch (false = already completed or retired).
func (l *lane) prefill(ar *activeReq) bool {
	// The session carries the request span: decode-step spans parent
	// under serve.request; the prefill itself nests under serve.prefill.
	s0 := l.e.clock.Now()
	sess, err := l.runner.NewScopedSessionCtx(ar.tctx, l.e.cfg.Mode, fmt.Sprintf("req%d/", ar.id))
	if err != nil {
		l.breaker.Record(err)
		l.concludeProbe(ar, err)
		// The scorer sees what the breaker sees: a session that cannot even
		// be created is a judged failure, not a silent one.
		l.observe(l.e.clock.Now().Sub(s0), err)
		l.fail(ar, err)
		return false
	}
	ar.sess = sess
	pctx, pspan := obs.StartSpan(ar.tctx, "serve.prefill")
	pspan.SetAttr("backend", l.name)
	t0 := l.e.clock.Now()
	opctx, cancel := l.opCtx(pctx)
	first, err := sess.PrefillCtx(opctx, ar.prompt)
	cancel()
	pspan.End()
	l.breaker.Record(err)
	l.concludeProbe(ar, err)
	l.observe(l.e.clock.Now().Sub(t0), err)
	if err != nil {
		l.fail(ar, err)
		return false
	}
	if ar.ttft == 0 {
		// Only the first attempt defines TTFT; a re-queued request's
		// client saw its first token before the failover.
		ar.ttft = l.e.clock.Now().Sub(ar.arrival)
		l.e.stats.recordTTFT(ar.ttft)
	}
	l.emit(ar, first)
	if len(ar.tokens) >= ar.maxTokens {
		l.finish(ar, nil, outcomeCompleted)
		return false
	}
	return true
}

// advance runs one request's share of a decode iteration. didStep
// reports whether a decode step executed (the occupancy sample); stay
// whether the request remains in the batch.
func (l *lane) advance(ar *activeReq) (didStep, stay bool) {
	if l.retireIfDone(ar) {
		return false, false
	}
	t0 := l.e.clock.Now()
	opctx, cancel := l.opCtx(ar.tctx)
	tok, err := ar.sess.StepCtx(opctx)
	cancel()
	d := l.e.clock.Now().Sub(t0)
	l.e.stats.recordStep(d)
	l.breaker.Record(err)
	l.observe(d, err)
	if err != nil {
		l.fail(ar, err)
		return false, false
	}
	l.emit(ar, tok)
	if len(ar.tokens) >= ar.maxTokens {
		l.finish(ar, nil, outcomeCompleted)
		return true, false
	}
	return true, true
}

// concludeProbe settles the breaker's half-open probe when this
// request's admission claimed it; a no-op for ordinary admissions.
func (l *lane) concludeProbe(ar *activeReq, err error) {
	ar.bprobe.Conclude(err)
	ar.bprobe = nil
}

// observe feeds one op's latency and failure classification to the
// health tracker. Caller-side cancellation says nothing about the
// endpoint and is skipped.
func (l *lane) observe(d time.Duration, err error) {
	if l.tracker == nil {
		return
	}
	if err != nil && errors.Is(err, context.Canceled) {
		return
	}
	l.tracker.Observe(d, err != nil && (lostBackend(err) || transport.IsFrameError(err)))
}

// lostBackend classifies errors that mean the backend (not the request)
// is at fault: transient transport failures, per-op timeouts, and
// server-side state loss. These justify a re-queue; anything else fails
// the request.
func lostBackend(err error) bool {
	return transport.Retryable(err) || transport.IsStateLoss(err) ||
		errors.Is(err, context.DeadlineExceeded)
}

// fail routes an execution error: the request's own expiry/cancel wins,
// backend loss re-queues within budget (then sheds 503), anything else
// fails the request outright.
func (l *lane) fail(ar *activeReq, err error) {
	if l.retireIfDone(ar) {
		return
	}
	if !lostBackend(err) {
		l.finish(ar, err, outcomeFailed)
		return
	}
	l.failures.Add(1)
	if ar.retries >= l.e.cfg.RetryBudget {
		l.finish(ar, fmt.Errorf("%w: %d attempt(s) exhausted on %s: %v",
			ErrBackendUnavailable, ar.retries+1, l.name, err), outcomeUnavailable)
		return
	}
	ar.retries++
	l.requeue(ar)
}

// requeue hands a backend-loss victim back to the admission queue. Its
// session restarts from scratch on whichever lane picks it up; the
// deterministic decode regenerates the same prefix, and emit suppresses
// tokens the client already received.
func (l *lane) requeue(ar *activeReq) {
	if ar.sess != nil {
		_ = ar.sess.Close()
		ar.sess = nil
	}
	l.e.noteLeave(ar)
	if len(ar.tokens) > ar.replayed {
		ar.replayed = len(ar.tokens)
	}
	ar.tokens = nil
	l.requeues.Add(1)
	l.e.stats.requeued.Inc()
	_, ar.qspan = obs.StartSpan(ar.tctx, "serve.queue")
	l.e.requeue(l, ar)
}

// retireIfDone retires a cancelled or deadline-expired request at this
// step boundary; it reports whether the request was retired.
func (l *lane) retireIfDone(ar *activeReq) bool {
	if ar.ctx != nil && ar.ctx.Err() != nil {
		l.finish(ar, ar.ctx.Err(), outcomeCancelled)
		return true
	}
	if !ar.deadline.IsZero() && l.e.clock.Now().After(ar.deadline) {
		l.finish(ar, ErrDeadlineExceeded, outcomeExpired)
		return true
	}
	return false
}

// emit records a generated token and invokes the streaming hook —
// except for the replayed prefix of a re-queued request, whose client
// already holds those tokens.
func (l *lane) emit(ar *activeReq, tok int64) {
	idx := len(ar.tokens)
	ar.tokens = append(ar.tokens, tok)
	if idx < ar.replayed {
		return
	}
	l.e.stats.tokensOut.Inc()
	if ar.onToken != nil {
		ar.onToken(Token{Index: idx, ID: tok})
	}
}

// finish retires a request: releases its per-request remote state,
// builds the result (partial tokens included on expiry/cancel), bumps
// the outcome counter, closes the request span, and unblocks the
// submitter.
func (l *lane) finish(ar *activeReq, err error, outcome string) {
	if ar.sess != nil {
		_ = ar.sess.Close()
	}
	l.e.noteLeave(ar)
	lat := l.e.clock.Now().Sub(ar.arrival)
	if err == nil {
		l.e.stats.recordLatency(lat)
	}
	l.e.stats.countOutcome(outcome)
	// A request retired while still queued never had its queue span
	// ended by prefill.
	ar.qspan.End()
	ar.qspan = nil
	ar.span.SetAttr("outcome", outcome)
	ar.span.SetAttrInt("tokens", int64(len(ar.tokens)))
	ar.span.SetAttr("backend", l.name)
	ar.span.End()
	ar.complete(&Result{
		Tokens:  ar.tokens,
		TTFT:    ar.ttft,
		Latency: lat,
		Backend: l.name,
	}, err)
}
