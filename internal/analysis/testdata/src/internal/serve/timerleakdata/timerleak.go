// Package timerleakdata is genie-lint test fixture data for the
// timer-leak analyzer: timers allocated in loops need a Stop in the
// loop body, time.Tick is never stoppable, and the interprocedural
// summaries extend the rule through helpers.
package timerleakdata

import "time"

// tickNeverStops: time.Tick anywhere is a process-lifetime leak.
func tickNeverStops(work func()) {
	for range time.Tick(time.Second) { // want "time.Tick's ticker can never be stopped"
		work()
	}
}

// afterInSelect leaks one timer per iteration another case wins.
func afterInSelect(done chan struct{}, work chan int) {
	for {
		select {
		case <-work:
		case <-time.After(time.Second): // want "time.After in a multi-case select inside a loop"
			return
		case <-done:
			return
		}
	}
}

// plainAfterSleep is always consumed — a sleep, not a leak.
func plainAfterSleep(n int) {
	for i := 0; i < n; i++ {
		<-time.After(time.Millisecond)
	}
}

// timerNoStop allocates per iteration without ever stopping.
func timerNoStop(n int) {
	for i := 0; i < n; i++ {
		t := time.NewTimer(time.Second) // want "allocated in a loop without a Stop"
		<-t.C
	}
}

// timerStopped stops in the body; fine.
func timerStopped(work chan int, n int) {
	for i := 0; i < n; i++ {
		t := time.NewTimer(time.Second)
		select {
		case <-work:
		case <-t.C:
		}
		t.Stop()
	}
}

// deferredStopInLoop piles up timers until the function returns.
func deferredStopInLoop(n int) {
	for i := 0; i < n; i++ {
		t := time.NewTimer(time.Second) // want "only a deferred t.Stop"
		defer t.Stop()
		<-t.C
	}
}

// leakyDelay allocates a timer nothing stops — harmless once, but its
// summary marks every looping caller.
func leakyDelay(work chan int) {
	t := time.NewTimer(time.Millisecond)
	select {
	case <-work:
	case <-t.C:
	}
}

// churnLoop calls it every iteration: unbounded timer pile-up the
// AST-local pass could not see.
func churnLoop(work chan int, n int) {
	for i := 0; i < n; i++ {
		leakyDelay(work) // want "each loop iteration calls leakyDelay, which leaks a timer"
	}
}

// boundedDelay stops its timer; looping callers are fine.
func boundedDelay(work chan int) {
	t := time.NewTimer(time.Millisecond)
	defer t.Stop()
	select {
	case <-work:
	case <-t.C:
	}
}

func politeLoop(work chan int, n int) {
	for i := 0; i < n; i++ {
		boundedDelay(work)
	}
}
