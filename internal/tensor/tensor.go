package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"unsafe"
)

// Tensor is a dense, row-major, contiguous n-dimensional array. The backing
// store is a raw byte slice so that the transport layer can send tensors
// with zero copies: Bytes() exposes the exact wire representation.
//
// Tensors created through a transport.BufferPool live in "pinned" buffers
// (the DPDK-managed-host-memory analogue from §3.4 of the paper); the pool
// hands the tensor a release func so the buffer can be recycled.
type Tensor struct {
	shape   Shape
	dtype   DType
	data    []byte
	pinned  bool
	release func()

	// Per-channel quantization metadata, present only on I8 tensors
	// produced by quant.QuantizeLinear: the real value of element e in
	// channel c along qaxis is int8(e) * scales[c]. Nil scales means the
	// tensor is plain int8 data with no dequantization semantics.
	scales []float32
	qaxis  uint8

	// kcache holds a kernel-built acceleration structure derived from the
	// (immutable) element data — see KernelCache. It is deliberately not
	// copied by Clone/Reshape and never serialized: it is a pure cache the
	// owning kernel can rebuild from Bytes() at any time.
	kcache atomic.Pointer[any]
}

// New allocates a zeroed tensor of the given dtype and shape.
func New(dt DType, shape ...int) *Tensor {
	s := Shape(shape)
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return &Tensor{
		shape: s.Clone(),
		dtype: dt,
		data:  make([]byte, s.NumElements()*dt.Size()),
	}
}

// FromBytes wraps an existing byte slice (no copy). len(data) must equal
// shape.NumElements()*dt.Size().
func FromBytes(dt DType, shape Shape, data []byte) (*Tensor, error) {
	want := shape.NumElements() * dt.Size()
	if len(data) != want {
		return nil, fmt.Errorf("tensor: byte length %d does not match %s%v (want %d)",
			len(data), dt, shape, want)
	}
	return &Tensor{shape: shape.Clone(), dtype: dt, data: data}, nil
}

// FromF32 builds an F32 tensor from values (copied).
func FromF32(shape Shape, values []float32) *Tensor {
	if shape.NumElements() != len(values) {
		panic(fmt.Sprintf("tensor: %d values for shape %v", len(values), shape))
	}
	t := New(F32, shape...)
	copy(t.F32(), values)
	return t
}

// FromI64 builds an I64 tensor from values (copied).
func FromI64(shape Shape, values []int64) *Tensor {
	if shape.NumElements() != len(values) {
		panic(fmt.Sprintf("tensor: %d values for shape %v", len(values), shape))
	}
	t := New(I64, shape...)
	copy(t.I64(), values)
	return t
}

// Full allocates a tensor with every element set to v. It is the
// construction-time alternative to Fill for code outside the kernel
// packages, where mutating an existing tensor is off-limits (genie-lint
// tensormut): the tensor is born with the value instead of written
// after the fact.
func Full(dt DType, v float32, shape ...int) *Tensor {
	t := New(dt, shape...)
	t.Fill(v)
	return t
}

// Scalar returns a rank-0 F32 tensor holding v.
func Scalar(v float32) *Tensor {
	t := New(F32)
	t.F32()[0] = v
	return t
}

// WrapPinned wraps buf as a pinned tensor owned by a buffer pool; release
// is invoked by Release().
func WrapPinned(dt DType, shape Shape, buf []byte, release func()) (*Tensor, error) {
	t, err := FromBytes(dt, shape, buf)
	if err != nil {
		return nil, err
	}
	t.pinned = true
	t.release = release
	return t, nil
}

// Shape returns the tensor's shape (callers must not mutate it).
func (t *Tensor) Shape() Shape { return t.shape }

// DType returns the element type.
func (t *Tensor) DType() DType { return t.dtype }

// NumElements returns the total element count.
func (t *Tensor) NumElements() int { return t.shape.NumElements() }

// NumBytes returns the size of the backing store in bytes.
func (t *Tensor) NumBytes() int { return len(t.data) }

// Pinned reports whether the tensor lives in network-ready pinned memory.
func (t *Tensor) Pinned() bool { return t.pinned }

// Release returns a pinned tensor's buffer to its pool. Safe to call on
// unpinned tensors (no-op). The tensor must not be used afterwards.
func (t *Tensor) Release() {
	if t.release != nil {
		r := t.release
		t.release = nil
		t.data = nil
		r()
	}
}

// Bytes exposes the raw backing store. This IS the wire format: dtype and
// shape travel in the frame header, the payload is this slice verbatim.
func (t *Tensor) Bytes() []byte { return t.data }

// F32 reinterprets the backing store as []float32. Panics on dtype
// mismatch.
func (t *Tensor) F32() []float32 {
	t.mustBe(F32)
	if len(t.data) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&t.data[0])), t.NumElements())
}

// I64 reinterprets the backing store as []int64.
func (t *Tensor) I64() []int64 {
	t.mustBe(I64)
	if len(t.data) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&t.data[0])), t.NumElements())
}

// I32 reinterprets the backing store as []int32.
func (t *Tensor) I32() []int32 {
	t.mustBe(I32)
	if len(t.data) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&t.data[0])), t.NumElements())
}

// U8 returns the backing store for a U8 tensor.
func (t *Tensor) U8() []byte {
	t.mustBe(U8)
	return t.data
}

// I8 reinterprets the backing store as []int8.
func (t *Tensor) I8() []int8 {
	t.mustBe(I8)
	if len(t.data) == 0 {
		return nil
	}
	return unsafe.Slice((*int8)(unsafe.Pointer(&t.data[0])), t.NumElements())
}

// AttachScales installs per-channel dequantization scales on an I8
// tensor: the value of element e in channel c along axis is
// int8(e)*scales[c]. len(scales) must equal shape[axis]. The scales
// travel with the tensor through Clone, serialization, and the wire.
func (t *Tensor) AttachScales(axis int, scales []float32) error {
	if t.dtype != I8 {
		return fmt.Errorf("tensor: scales on %s tensor (only i8 is quantized)", t.dtype)
	}
	if axis < 0 || axis >= t.shape.Rank() {
		return fmt.Errorf("tensor: quant axis %d out of range for %v", axis, t.shape)
	}
	if len(scales) != t.shape[axis] {
		return fmt.Errorf("tensor: %d scales for axis %d of %v (want %d)",
			len(scales), axis, t.shape, t.shape[axis])
	}
	t.scales = scales
	t.qaxis = uint8(axis)
	return nil
}

// Scales returns the per-channel dequantization scales (nil when the
// tensor is not quantized). Callers must not mutate the slice.
func (t *Tensor) Scales() []float32 { return t.scales }

// QuantAxis returns the axis Scales() applies along (0 when unscaled).
func (t *Tensor) QuantAxis() int { return int(t.qaxis) }

// KernelCache returns the kernel acceleration structure attached to this
// tensor, invoking build to create it on first use. Kernels use it to
// amortize data-layout transforms (e.g. the packed int8 decode layout)
// across calls on long-lived tensors such as model weights. build must
// derive its result purely from the tensor's immutable contents; under a
// race several builds may run, but exactly one result wins and is
// returned to everyone thereafter.
func (t *Tensor) KernelCache(build func() any) any {
	if p := t.kcache.Load(); p != nil {
		return *p
	}
	v := build()
	if !t.kcache.CompareAndSwap(nil, &v) {
		if p := t.kcache.Load(); p != nil {
			return *p
		}
	}
	return v
}

// channelOf maps a flat index to its channel along the quant axis.
func (t *Tensor) channelOf(i int) int {
	stride := 1
	for d := t.shape.Rank() - 1; d > int(t.qaxis); d-- {
		stride *= t.shape[d]
	}
	return (i / stride) % t.shape[t.qaxis]
}

// F16 reinterprets the backing store as raw half-precision bit patterns.
func (t *Tensor) F16() []uint16 {
	t.mustBe(F16)
	if len(t.data) == 0 {
		return nil
	}
	return unsafe.Slice((*uint16)(unsafe.Pointer(&t.data[0])), t.NumElements())
}

func (t *Tensor) mustBe(dt DType) {
	if t.dtype != dt {
		panic(fmt.Sprintf("tensor: dtype is %s, not %s", t.dtype, dt))
	}
}

// At returns element i (flat index) widened to float32, for any dtype.
func (t *Tensor) At(i int) float32 {
	switch t.dtype {
	case F32:
		return t.F32()[i]
	case F16:
		return F16ToF32(t.F16()[i])
	case I64:
		return float32(t.I64()[i])
	case I32:
		return float32(t.I32()[i])
	case U8:
		return float32(t.data[i])
	case I8:
		v := float32(int8(t.data[i]))
		if t.scales != nil {
			v *= t.scales[t.channelOf(i)]
		}
		return v
	}
	panic("tensor: unknown dtype")
}

// SetAt stores v (narrowed as needed) at flat index i.
func (t *Tensor) SetAt(i int, v float32) {
	switch t.dtype {
	case F32:
		t.F32()[i] = v
	case F16:
		t.F16()[i] = F16FromF32(v)
	case I64:
		t.I64()[i] = int64(v)
	case I32:
		t.I32()[i] = int32(v)
	case U8:
		t.data[i] = byte(v)
	case I8:
		t.data[i] = byte(int8(v))
	default:
		panic("tensor: unknown dtype")
	}
}

// Clone deep-copies the tensor into unpinned memory.
func (t *Tensor) Clone() *Tensor {
	out := New(t.dtype, t.shape...)
	copy(out.data, t.data)
	if t.scales != nil {
		out.scales = append([]float32(nil), t.scales...)
		out.qaxis = t.qaxis
	}
	return out
}

// Reshape returns a new tensor header sharing the backing store with a new
// shape of equal element count. Quantization scales carry over only when
// the new shape keeps the quant axis dimension intact; otherwise the
// channel mapping is meaningless and the scales are dropped.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	s := Shape(shape)
	if s.NumElements() != t.NumElements() {
		return nil, fmt.Errorf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.shape, t.NumElements(), s, s.NumElements())
	}
	out := &Tensor{shape: s.Clone(), dtype: t.dtype, data: t.data, pinned: t.pinned}
	if t.scales != nil && int(t.qaxis) < s.Rank() && s[t.qaxis] == len(t.scales) {
		out.scales, out.qaxis = t.scales, t.qaxis
	}
	return out, nil
}

// ToF32 returns an F32 copy of the tensor, converting elementwise.
func (t *Tensor) ToF32() *Tensor {
	if t.dtype == F32 {
		return t.Clone()
	}
	out := New(F32, t.shape...)
	dst := out.F32()
	for i := range dst {
		dst[i] = t.At(i)
	}
	return out
}

// ToF16 returns an F16 copy of the tensor.
func (t *Tensor) ToF16() *Tensor {
	out := New(F16, t.shape...)
	dst := out.F16()
	for i := range dst {
		dst[i] = F16FromF32(t.At(i))
	}
	return out
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i, n := 0, t.NumElements(); i < n; i++ {
		t.SetAt(i, v)
	}
}

// RandN fills the tensor with pseudo-normal values (mean 0, stddev sd)
// from rng, used for deterministic weight initialization in tests and
// examples.
func (t *Tensor) RandN(rng *rand.Rand, sd float32) {
	for i, n := 0, t.NumElements(); i < n; i++ {
		t.SetAt(i, float32(rng.NormFloat64())*sd)
	}
}

// AllClose reports whether two tensors have the same shape and elementwise
// |a-b| <= atol + rtol*|b|.
func AllClose(a, b *Tensor, rtol, atol float64) bool {
	if !a.shape.Equal(b.shape) {
		return false
	}
	for i, n := 0, a.NumElements(); i < n; i++ {
		va, vb := float64(a.At(i)), float64(b.At(i))
		if math.IsNaN(va) || math.IsNaN(vb) {
			return false
		}
		if math.Abs(va-vb) > atol+rtol*math.Abs(vb) {
			return false
		}
	}
	return true
}

// String renders a compact description like "f32[2 3]".
func (t *Tensor) String() string {
	return fmt.Sprintf("%s%v", t.dtype, t.shape)
}

func f32bits(f float32) uint32     { return *(*uint32)(unsafe.Pointer(&f)) }
func f32frombits(b uint32) float32 { return *(*float32)(unsafe.Pointer(&b)) }
