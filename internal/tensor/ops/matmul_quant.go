package ops

import (
	"genie/internal/compute"
	"genie/internal/quant"
	"genie/internal/tensor"
)

// Quantized matmul kernels (raw-speed tier, DESIGN.md §11).
//
// int8 path: weights arrive as per-column (per-row for matmulT)
// symmetric int8 with f32 scales; activations are quantized dynamically
// per row at execute time. Accumulation is int8×int8→int32, which is
// EXACT — integer adds are associative — so unlike the f32 kernels the
// int8 kernels may split work along any axis (including output columns
// at m=1, where the f32 path is forced serial) and still produce
// bit-identical results at every worker count. Dequantization happens
// once on store: out[i,j] = acc · as[i] · bs[j].
//
// f16 path: weights are stored as IEEE half bits and widened tile-wise
// into an f32 panel, then fed through the exact add order of the f32
// kernel — so the result is bit-identical to the f32 kernel applied to
// the dequantized weights, and the parity suite can reuse the f32
// reference with a dtype tolerance of zero.

// SWAR decode path. At m=1 the GEMV is latency-bound on scalar
// multiply/accumulate throughput, so the kernel packs four adjacent
// weight columns into the 16-bit lanes of one uint64 and multiplies all
// four by the activation byte with a single integer multiply. To keep
// every lane non-negative (a signed product would borrow into its
// neighbor), both operands are biased: ua = qa+128 ∈ [1,255] and
// ub = qb+128 ∈ [1,255], whose product 65025 < 2^16 never carries
// across a lane. The true dot is recovered exactly from precomputable
// correction sums:
//
//	Σ qa·qb = Σ ua·ub − 128·Σua − 128·Σub + k·128²
//
// Σub per column is built once with the packed layout (weights are
// static across decode steps, so the transform is cached on the tensor
// via KernelCache); Σua falls out of activation quantization. The
// result is the same exact int32 dot the byte-wise kernel computes, so
// this path is bit-identical to matmulQ8Band at every worker count.
const (
	// swarMaxM bounds the packed path to decode-ish shapes: at large m
	// the tiled band kernel reuses each b panel across many rows, which
	// beats re-streaming the 2-byte-per-element packed layout per row.
	swarMaxM = 8
	// swarMaxK keeps each 32-bit accumulator lane safe: k products of at
	// most 255·255 = 65025 need k ≤ 66051 to stay under 2^32. Stay well
	// clear; larger k falls back to the band kernel.
	swarMaxK = 32768
	// swarMask extracts lanes 0 and 2 of a 4×16-bit uint64.
	swarMask = 0x0000ffff0000ffff
)

// q8Pack is the cached decode layout for one int8 weight tensor:
// column-major groups of four adjacent output columns, biased by +128
// into 16-bit lanes, plus the per-column bias-correction sums.
type q8Pack struct {
	groups int      // n/4 full column groups; n%4 tail columns stay byte-wise
	packed []uint64 // [groups][k], lane l of packed[g*k+kk] = qb[kk][4g+l]+128
	colSum []int64  // per packed column: Σ_kk (qb[kk][j]+128)
}

func buildQ8Pack(qb []int8, k, n int) *q8Pack {
	p := &q8Pack{groups: n / 4}
	p.packed = make([]uint64, p.groups*k)
	p.colSum = make([]int64, 4*p.groups)
	for jg := 0; jg < p.groups; jg++ {
		col := p.packed[jg*k : (jg+1)*k]
		for kk := 0; kk < k; kk++ {
			var v uint64
			for l := 0; l < 4; l++ {
				ub := uint64(int32(qb[kk*n+jg*4+l]) + 128)
				v |= ub << (16 * l)
				p.colSum[jg*4+l] += int64(ub)
			}
			col[kk] = v
		}
	}
	return p
}

// swarDot multiplies one packed 4-column group by a biased activation
// row: lanes 0/2 of the first result and 1/3 of the second hold the four
// biased dot products.
//
// noinline is load-bearing, not cosmetic: inlined into a caller with
// more live values, the register allocator spills an accumulator to the
// stack and the loop serializes on store-to-load forwarding (~13×
// slower, measured). Standalone, everything lives in registers. The
// call overhead is amortized over len(col) iterations.
//
// mask arrives as an argument (always swarMask) rather than as a
// constant in the body: as a constant the compiler re-materializes the
// 10-byte MOVQ imm64 twice per iteration instead of keeping the value
// in a register, which measurably throttles the loop on decode
// bandwidth. As a parameter it lives in a register for the whole loop.
//
//go:noinline
func swarDot(col []uint64, row []uint8, mask uint64) (accA, accB uint64) {
	if len(row) < len(col) {
		return 0, 0 // unreachable: callers slice both to length k
	}
	for kk, v := range col {
		p := v * uint64(row[kk])
		accA += p & mask
		accB += (p >> 16) & mask
	}
	return accA, accB
}

// matmulQ8Packed computes rows of a @ qb through the packed SWAR layout.
// The parallel split is over column groups; integer accumulation keeps
// it bit-identical at any worker count.
func matmulQ8Packed(qa []int8, pack *q8Pack, qb []int8, asc, bsc []float32, out []float32, m, k, n int) {
	ua := make([]uint8, m*k)
	uaSum := make([]int64, m)
	for i := 0; i < m; i++ {
		var s int64
		for kk, q := range qa[i*k : (i+1)*k] {
			u := int32(q) + 128
			ua[i*k+kk] = uint8(u)
			s += int64(u)
		}
		uaSum[i] = s
	}
	kBias := int64(k) * 128 * 128
	compute.ParallelFor(pack.groups, grainBy(8*m*k), func(g0, g1 int) {
		for i := 0; i < m; i++ {
			row := ua[i*k : (i+1)*k]
			rowCorr := kBias - 128*uaSum[i]
			ai := asc[i]
			for jg := g0; jg < g1; jg++ {
				accA, accB := swarDot(pack.packed[jg*k:(jg+1)*k], row, swarMask)
				j := jg * 4
				lanes := [4]int64{
					int64(uint32(accA)), int64(uint32(accB)),
					int64(accA >> 32), int64(accB >> 32),
				}
				for l := 0; l < 4; l++ {
					dot := lanes[l] + rowCorr - 128*pack.colSum[j+l]
					out[i*n+j+l] = float32(int32(dot)) * ai * bsc[j+l]
				}
			}
		}
	})
	// Tail columns (n % 4) run the exact byte-wise dot — same int32, same
	// store expression, so the seam is invisible.
	for j := pack.groups * 4; j < n; j++ {
		for i := 0; i < m; i++ {
			arow := qa[i*k : (i+1)*k]
			var acc int32
			for kk := range arow {
				acc += int32(arow[kk]) * int32(qb[kk*n+j])
			}
			out[i*n+j] = float32(acc) * asc[i] * bsc[j]
		}
	}
}

// matmulQ8 computes a @ qb for f32 a [m,k] and int8 qb [k,n] with
// per-column scales bsc. Decode-shaped calls (small m) go through the
// packed SWAR path, whose layout transform is cached on the weight
// tensor bt; larger m uses the band kernel, row-band parallel when m
// has enough rows and column-tile parallel otherwise — all of which is
// safe only here because integer accumulation is order-independent.
func matmulQ8(a []float32, bt *tensor.Tensor, out []float32, m, k, n int) {
	qb, bsc := bt.I8(), bt.Scales()
	qa := make([]int8, m*k)
	asc := make([]float32, m)
	if m <= swarMaxM && k <= swarMaxK && n >= 4 {
		for i := 0; i < m; i++ {
			asc[i] = quant.QuantizeRow(a[i*k:(i+1)*k], qa[i*k:(i+1)*k])
		}
		pack, ok := bt.KernelCache(func() any { return buildQ8Pack(qb, k, n) }).(*q8Pack)
		if ok {
			matmulQ8Packed(qa, pack, qb, asc, bsc, out, m, k, n)
			return
		}
		// Foreign cache type on this tensor: fall through to the band
		// kernel (same bits, just slower).
	}
	nTiles := (n + mmNTile - 1) / mmNTile
	if m >= nTiles {
		compute.ParallelFor(m, grainBy(2*k*n), func(i0, i1 int) {
			for i := i0; i < i1; i++ {
				asc[i] = quant.QuantizeRow(a[i*k:(i+1)*k], qa[i*k:(i+1)*k])
			}
			matmulQ8Band(qa, qb, asc, bsc, out, i0, i1, 0, n, k, n)
		})
		return
	}
	for i := 0; i < m; i++ {
		asc[i] = quant.QuantizeRow(a[i*k:(i+1)*k], qa[i*k:(i+1)*k])
	}
	compute.ParallelFor(nTiles, grainBy(2*k*m*mmNTile), func(t0, t1 int) {
		matmulQ8Band(qa, qb, asc, bsc, out, 0, m, t0*mmNTile, min(t1*mmNTile, n), k, n)
	})
}

// matmulQ8Band fills out rows [i0,i1) × columns [j0,j1). Loop order
// (jc, i, kc, kk, j): the int32 accumulator tile for one output row
// spans a full column strip, so all K must be consumed before the
// dequantizing store — the b strip for one jc (k × ≤256 int8 = ≤16 KiB
// at k=64) stays L1/L2-resident across the row loop.
//
// Full tiles run through matmulQ8TileFull, whose indices are all
// compile-time bounded (array pointers over the tile) — the bounds-check
// -free inner loop is where the int8 kernel's serial advantage over the
// f32 path comes from on a single core.
func matmulQ8Band(qa, qb []int8, asc, bsc []float32, out []float32, i0, i1, j0, j1, k, n int) {
	var acc [mmNTile]int32
	for jc := j0; jc < j1; jc += mmNTile {
		jw := min(mmNTile, j1-jc)
		for i := i0; i < i1; i++ {
			arow := qa[i*k : (i+1)*k]
			if jw == mmNTile {
				matmulQ8TileFull(arow, qb, &acc, jc, k, n)
			} else {
				matmulQ8TilePart(arow, qb, acc[:jw], jc, k, n)
			}
			ai := asc[i]
			orow := out[i*n+jc : i*n+jc+jw]
			bs := bsc[jc : jc+jw]
			for j := range orow {
				orow[j] = float32(acc[j]) * ai * bs[j]
			}
		}
	}
}

// matmulQ8TileFull accumulates one output row's full 256-wide column
// tile. Every index is provably in bounds at compile time: acc is a
// fixed-size array and each b row is viewed through a *[mmNTile]int8.
func matmulQ8TileFull(arow, qb []int8, acc *[mmNTile]int32, jc, k, n int) {
	for j := range acc {
		acc[j] = 0
	}
	kk := 0
	for ; kk+4 <= k; kk += 4 {
		a0 := int32(arow[kk])
		a1 := int32(arow[kk+1])
		a2 := int32(arow[kk+2])
		a3 := int32(arow[kk+3])
		r0 := kk*n + jc
		b0 := (*[mmNTile]int8)(qb[r0:])
		b1 := (*[mmNTile]int8)(qb[r0+n:])
		b2 := (*[mmNTile]int8)(qb[r0+2*n:])
		b3 := (*[mmNTile]int8)(qb[r0+3*n:])
		for j := 0; j < mmNTile; j++ {
			s := acc[j]
			s += a0 * int32(b0[j])
			s += a1 * int32(b1[j])
			s += a2 * int32(b2[j])
			s += a3 * int32(b3[j])
			acc[j] = s
		}
	}
	for ; kk < k; kk++ {
		a0 := int32(arow[kk])
		b0 := (*[mmNTile]int8)(qb[kk*n+jc:])
		for j := 0; j < mmNTile; j++ {
			acc[j] += a0 * int32(b0[j])
		}
	}
}

// matmulQ8TilePart is the ragged right-edge tile (jw < 256).
func matmulQ8TilePart(arow, qb []int8, av []int32, jc, k, n int) {
	jw := len(av)
	for j := range av {
		av[j] = 0
	}
	for kk := 0; kk < k; kk++ {
		a0 := int32(arow[kk])
		brow := qb[kk*n+jc : kk*n+jc+jw]
		for j := range av {
			av[j] += a0 * int32(brow[j])
		}
	}
}

// matmulTQ8 computes a @ qbᵀ for f32 a [m,k] and int8 qb [n,k] with
// per-row scales bsc. Split follows the larger output dimension, same
// as the f32 MatMulT.
func matmulTQ8(a []float32, qb []int8, bsc []float32, out []float32, m, k, n int) {
	qa := make([]int8, m*k)
	asc := make([]float32, m)
	for i := 0; i < m; i++ {
		asc[i] = quant.QuantizeRow(a[i*k:(i+1)*k], qa[i*k:(i+1)*k])
	}
	if m >= n {
		compute.ParallelFor(m, grainBy(2*k*n), func(i0, i1 int) {
			matmulTQ8Block(qa, qb, asc, bsc, out, i0, i1, 0, n, k, n)
		})
	} else {
		compute.ParallelFor(n, grainBy(2*k*m), func(j0, j1 int) {
			matmulTQ8Block(qa, qb, asc, bsc, out, 0, m, j0, j1, k, n)
		})
	}
}

func matmulTQ8Block(qa, qb []int8, asc, bsc []float32, out []float32, i0, i1, j0, j1, k, n int) {
	for i := i0; i < i1; i++ {
		arow := qa[i*k : (i+1)*k]
		ai := asc[i]
		for j := j0; j < j1; j++ {
			brow := qb[j*k : (j+1)*k]
			var acc int32
			for kk := range arow {
				acc += int32(arow[kk]) * int32(brow[kk])
			}
			out[i*n+j] = float32(acc) * ai * bsc[j]
		}
	}
}

// matmulF16 computes a @ b for f32 a and half-precision b [k,n], row-band
// parallel like matmul2d.
func matmulF16(a []float32, b []uint16, out []float32, m, k, n int) {
	compute.ParallelFor(m, grainBy(2*k*n), func(i0, i1 int) {
		matmulF16Band(a, b, out, i0, i1, k, n)
	})
}

// matmulF16Band mirrors matmulBand exactly, widening each 64×256 b tile
// into an f32 panel first. The inner loops then add contributions in
// the identical sequence, so the output is bit-for-bit the f32 kernel's
// output on pre-widened weights.
func matmulF16Band(a []float32, b []uint16, out []float32, i0, i1, k, n int) {
	tab := f16Table()
	panel := make([]float32, mmKTile*mmNTile)
	for jc := 0; jc < n; jc += mmNTile {
		jw := min(mmNTile, n-jc)
		for kc := 0; kc < k; kc += mmKTile {
			kw := min(mmKTile, k-kc)
			for kk := 0; kk < kw; kk++ {
				src := b[(kc+kk)*n+jc : (kc+kk)*n+jc+jw]
				dst := panel[kk*jw : (kk+1)*jw]
				for j, h := range src {
					dst[j] = tab[h]
				}
			}
			for i := i0; i < i1; i++ {
				arow := a[i*k+kc : i*k+kc+kw]
				orow := out[i*n+jc : i*n+jc+jw]
				kk := 0
				for ; kk+4 <= kw; kk += 4 {
					a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
					b0 := panel[kk*jw : kk*jw+jw]
					b1 := panel[(kk+1)*jw : (kk+1)*jw+jw]
					b2 := panel[(kk+2)*jw : (kk+2)*jw+jw]
					b3 := panel[(kk+3)*jw : (kk+3)*jw+jw]
					for j := range orow {
						s := orow[j]
						s += a0 * b0[j]
						s += a1 * b1[j]
						s += a2 * b2[j]
						s += a3 * b3[j]
						orow[j] = s
					}
				}
				for ; kk < kw; kk++ {
					av := arow[kk]
					brow := panel[kk*jw : kk*jw+jw]
					for j := range brow {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// matmulTF16Block is matmulTBlock with the rhs widened element-wise in
// the serial dot, preserving the single-accumulator add order.
func matmulTF16Block(a []float32, b []uint16, out []float32, i0, i1, j0, j1, k, n int) {
	tab := f16Table()
	for i := i0; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		for j := j0; j < j1; j++ {
			brow := b[j*k : (j+1)*k]
			var acc float32
			for kk := range arow {
				acc += arow[kk] * tab[brow[kk]]
			}
			out[i*n+j] = acc
		}
	}
}
