package eval

import (
	"testing"
	"time"

	"genie/internal/models"
	"genie/internal/runtime"
	"genie/internal/scheduler"
)

func TestAblationColocationShape(t *testing.T) {
	r := AblationColocation(PaperConfig())
	if r.MovedLatency <= r.ColocatedLatency {
		t.Error("moving the cache must be slower than co-locating it")
	}
	// Traffic gap should be enormous: the cache is ~100 MB by the end of
	// decode vs a few hundred KB of logits.
	if r.MovedBytes < 100*r.ColocatedBytes {
		t.Errorf("traffic gap %d/%d too small", r.MovedBytes, r.ColocatedBytes)
	}
}

func TestAblationPipelineShape(t *testing.T) {
	cfg := PaperConfig()
	p2 := AblationPipeline(cfg.Device, 2, 256)
	p4 := AblationPipeline(cfg.Device, 4, 256)
	if p2.Speedup() < 1 {
		t.Errorf("2-device pipeline slower than sequential: %.2f", p2.Speedup())
	}
	if p4.Speedup() <= p2.Speedup() {
		t.Errorf("more devices should help: %.2f vs %.2f", p4.Speedup(), p2.Speedup())
	}
	// Upper bound: cannot beat perfect scaling.
	if p4.Speedup() > 4.01 {
		t.Errorf("impossible speedup %.2f on 4 devices", p4.Speedup())
	}
}

func TestAblationRecomputeCrossover(t *testing.T) {
	cfg := PaperConfig()
	points := AblationRecompute(cfg.Device, cfg.Link, scheduler.RDMAProfile,
		64<<20, 3e11, []float64{0, 0.3, 0.6, 0.9})
	if len(points) != 4 {
		t.Fatalf("%d points", len(points))
	}
	// Fetch should win when idle, recompute when congested; the decision
	// must be monotone in congestion (fetch time only grows).
	if points[0].ChoseRecomp {
		t.Error("idle link: fetching a 64MB tensor should beat 67ms recompute")
	}
	if !points[3].ChoseRecomp {
		t.Error("90% congestion: recompute should win")
	}
	for i := 1; i < len(points); i++ {
		if points[i].FetchTime < points[i-1].FetchTime {
			t.Error("fetch time must grow with congestion")
		}
		if points[i].RecompTime != points[0].RecompTime {
			t.Error("recompute time must not depend on the network")
		}
	}
}

func TestAblationLineageRecoveryShape(t *testing.T) {
	cfg := PaperConfig()
	points := AblationLineageRecovery(cfg, []int{10, 50, 200})
	for _, p := range points {
		if p.ReplayCost >= p.FullRestart {
			t.Errorf("depth %d: replay %v should beat restart %v",
				p.Depth, p.ReplayCost, p.FullRestart)
		}
	}
	// Replay grows with depth; restart is dominated by the weight ship.
	if points[2].ReplayCost <= points[0].ReplayCost {
		t.Error("deeper loss should replay longer")
	}
	shipFloor := time.Duration(float64(cfg.Model.WeightBytes()) /
		cfg.RPC.SerializeBandwidth * float64(time.Second))
	if points[0].FullRestart < shipFloor {
		t.Error("full restart must include the weight shipment")
	}
}

func TestAblationGlobalBatchingShape(t *testing.T) {
	cfg := PaperConfig()
	points := AblationGlobalBatching(cfg.Device, models.GPTJ6B, 100, []int{1, 2, 8, 64})
	if points[0].Speedup != 1 {
		t.Errorf("batch 1 speedup %v", points[0].Speedup)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Speedup < points[i-1].Speedup-1e-9 {
			t.Errorf("speedup should be non-decreasing: %+v", points)
		}
	}
	// Roofline: bounded by weightBytes/perReqBytes amortization, so it
	// must saturate, not grow without bound.
	if points[3].Speedup > 50 {
		t.Errorf("batch-64 speedup %v implausible", points[3].Speedup)
	}
}

func TestTable1AllOptimizationsApply(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Applied {
			t.Errorf("%s: key optimization did not apply", r.Workload)
		}
		if len(r.DetectedPhases) == 0 {
			t.Errorf("%s: no phases detected", r.Workload)
		}
	}
}

func TestFig1DriverLevelLosesEverything(t *testing.T) {
	rows := Fig1NarrowWaist()
	if len(rows) != 3 {
		t.Fatalf("%d workloads", len(rows))
	}
	for _, r := range rows {
		if r.SRGPhases == 0 || r.SRGResidency == 0 {
			t.Errorf("%s: SRG should expose phases and residency", r.Workload)
		}
		if r.DriverOps == 0 {
			t.Errorf("%s: driver stream should still see ops", r.Workload)
		}
	}
	// The multimodal workload shows the richest semantic profile.
	var mm NarrowWaistResult
	for _, r := range rows {
		if r.Workload == "multimodal" {
			mm = r
		}
	}
	if mm.SRGModalities < 2 || mm.SRGPhases < 3 {
		t.Errorf("multimodal profile too thin: %+v", mm)
	}
}

func TestSimPhaseIndependence(t *testing.T) {
	// Decode results must be independent of prefill (phases are measured
	// as separate runs, each paying its own session setup).
	cfg := PaperConfig()
	a := cfg.Run(modeSem()).Decode.Latency
	cfg2 := cfg
	cfg2.PromptLen = 144 // different prompt shifts decode history
	b := cfg2.Run(modeSem()).Decode.Latency
	if a == b {
		t.Error("decode latency should reflect history length")
	}
	if b < a {
		t.Error("longer history should not be faster")
	}
}

func TestSimDeterminism(t *testing.T) {
	cfg := PaperConfig()
	for _, m := range allModes() {
		r1 := cfg.Run(m)
		r2 := cfg.Run(m)
		if r1 != r2 {
			t.Errorf("%v: simulation not deterministic", m)
		}
	}
}

func modeSem() runtime.Mode { return runtime.ModeSemAware }

func allModes() []runtime.Mode {
	return []runtime.Mode{runtime.ModeLocal, runtime.ModeNaive, runtime.ModeDeltaKV, runtime.ModeSemAware}
}

func TestLearnedLexiconAccuracy(t *testing.T) {
	res, err := LearnedLexicon()
	if err != nil {
		t.Fatal(err)
	}
	if res.TestGraphs < 20 {
		t.Fatalf("only %d test graphs", res.TestGraphs)
	}
	if acc := res.Accuracy(); acc < 0.95 {
		t.Errorf("held-out accuracy %.2f, want ≥0.95", acc)
	}
}
