// Package metrics holds small statistical helpers shared by the offline
// serving evaluation and the online engine's /stats endpoint, so both
// report percentiles computed the same way.
package metrics

import (
	"sort"
	"time"
)

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of an ascending-sorted
// duration slice using linear interpolation between closest ranks (the
// same estimator as numpy's default). Empty input returns 0; p outside
// [0,1] clamps.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if frac == 0 {
		return sorted[lo]
	}
	return sorted[lo] + time.Duration(frac*float64(sorted[lo+1]-sorted[lo])+0.5)
}

// PercentileOf sorts a copy of durations and returns its p-quantile —
// the convenience form for callers that still need the original order.
func PercentileOf(durations []time.Duration, p float64) time.Duration {
	s := append([]time.Duration(nil), durations...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return Percentile(s, p)
}
