package transport

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"genie/internal/obs"
)

// ErrBreakerOpen is returned by Breaker.Allow while the endpoint is
// quarantined: recent calls failed and the cooldown has not elapsed.
var ErrBreakerOpen = errors.New("transport: circuit breaker open")

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: calls flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: calls are rejected until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe call is in flight; its outcome decides
	// between reopening and closing.
	BreakerHalfOpen
)

// String returns the state label used in /stats and metrics.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// BreakerConfig parameterizes a Breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker
	// open (default 3).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (default 1s).
	Cooldown time.Duration
	// Now overrides the clock (tests); default time.Now.
	Now func() time.Time
	// IsFailure decides which errors count against the endpoint. The
	// default counts availability failures (ClassRetryable) and protocol
	// violations (ClassFatal, excluding caller-side cancellation);
	// application-level RemoteErrors prove the server is alive and reset
	// the streak.
	IsFailure func(error) bool
}

// Breaker is a per-endpoint circuit breaker: after Threshold
// consecutive failures it fails fast (Allow returns ErrBreakerOpen)
// instead of burning a timeout per call on a dead backend, then probes
// with a single call per cooldown until one succeeds.
//
// Usage: gate each call with Allow, then report its outcome to Record.
// When Allow returns a non-nil *Probe the admitted call is the
// half-open probe; its holder must invoke Probe.Conclude exactly once
// with the call's outcome (in addition to Record, which is
// probe-neutral), otherwise the probe slot leaks and the breaker
// sticks half-open.
//
// The probe slot is claimed by CAS and concluded only by the identity
// token Allow handed out. Record never attributes an outcome to the
// probe: a late Record from a call admitted before the trip — the
// half-open race this design exists for — cannot conclude a probe it
// never held, admit extra "probes", or close an open breaker.
type Breaker struct {
	cfg BreakerConfig

	// probing is the half-open probe slot, claimed by CAS so exactly one
	// admitted call per cooldown carries probe identity.
	probing atomic.Bool

	mu      sync.Mutex
	state   BreakerState
	fails   int
	until   time.Time // earliest instant an open breaker admits a probe
	probeID uint64    // identity of the probe currently holding the slot

	// Optional obs instrumentation (nil without Instrument).
	transitions [3]*obs.Counter // indexed by destination state
	rejected    *obs.Counter
	stateGauge  *obs.Gauge
}

// Probe is the identity token of one half-open probe call. The holder
// must call Conclude exactly once with the call's outcome; Conclude is
// idempotent and nil-safe (non-probe calls carry a nil *Probe).
type Probe struct {
	b    *Breaker
	id   uint64
	done atomic.Bool
}

// Conclude reports the probe call's outcome: success (or an error the
// breaker doesn't count) closes the breaker, a counted failure reopens
// it for another cooldown. A stale conclude — the breaker has already
// moved on — is a no-op.
func (p *Probe) Conclude(err error) {
	if p == nil || !p.done.CompareAndSwap(false, true) {
		return
	}
	b := p.b
	failure := err != nil && b.cfg.IsFailure(err)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerHalfOpen || p.id != b.probeID {
		return
	}
	b.probing.Store(false)
	if failure {
		b.fails++
		b.setState(BreakerOpen)
		b.until = b.cfg.Now().Add(b.cfg.Cooldown)
		return
	}
	b.fails = 0
	b.setState(BreakerClosed)
}

// NewBreaker builds a breaker; the zero config gives threshold 3,
// cooldown 1s, wall clock.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.IsFailure == nil {
		cfg.IsFailure = func(err error) bool {
			switch Classify(err) {
			case ClassRetryable:
				return true
			case ClassFatal:
				return !errors.Is(err, context.Canceled)
			}
			return false
		}
	}
	return &Breaker{cfg: cfg}
}

// Instrument registers this breaker's counters and state gauge on reg,
// labeled by endpoint, so trips and rejections show up in /metrics.
func (b *Breaker) Instrument(reg *obs.Registry, endpoint string) {
	if reg == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for st := BreakerClosed; st <= BreakerHalfOpen; st++ {
		b.transitions[st] = reg.Counter("genie_breaker_transitions_total",
			"circuit breaker state transitions", "endpoint", endpoint, "to", st.String())
	}
	b.rejected = reg.Counter("genie_breaker_rejected_total",
		"calls rejected while the breaker was open", "endpoint", endpoint)
	b.stateGauge = reg.Gauge("genie_breaker_state",
		"breaker position (0 closed, 1 open, 2 half-open)", "endpoint", endpoint)
	b.stateGauge.Set(int64(b.state))
}

// Allow reports whether a call may proceed. A nil error admits the
// call; in half-open the single admitted call additionally receives
// the non-nil probe identity token its holder must Conclude.
// ErrBreakerOpen rejects the call.
func (b *Breaker) Allow() (*Probe, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil, nil
	case BreakerOpen:
		if b.cfg.Now().Before(b.until) {
			b.reject()
			return nil, ErrBreakerOpen
		}
		if !b.probing.CompareAndSwap(false, true) {
			// Lost the slot race to a concurrent caller.
			b.reject()
			return nil, ErrBreakerOpen
		}
		b.setState(BreakerHalfOpen)
		b.probeID++
		return &Probe{b: b, id: b.probeID}, nil
	default: // BreakerHalfOpen
		if !b.probing.CompareAndSwap(false, true) {
			b.reject()
			return nil, ErrBreakerOpen
		}
		b.probeID++
		return &Probe{b: b, id: b.probeID}, nil
	}
}

// Record reports the outcome of a non-probe admitted call. Success (or
// an error the breaker doesn't count) clears the failure streak; a
// counted failure extends it and trips the breaker at the threshold.
// Record is probe-neutral by design: while the breaker is open or
// half-open it only updates the streak, never transitions — late
// outcomes from calls admitted before the trip used to masquerade as
// the probe here (closing an open breaker on a stray success, freeing
// the probe slot on a stray failure); now only Probe.Conclude settles
// a probe.
func (b *Breaker) Record(err error) {
	failure := err != nil && b.cfg.IsFailure(err)
	b.mu.Lock()
	defer b.mu.Unlock()
	if !failure {
		b.fails = 0
		return
	}
	b.fails++
	if b.state == BreakerClosed && b.fails >= b.cfg.Threshold {
		b.setState(BreakerOpen)
		b.until = b.cfg.Now().Add(b.cfg.Cooldown)
	}
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// RetryAfter returns how long until an open breaker admits its next
// probe — the value served in 503 Retry-After headers. Zero when the
// breaker is not open.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	d := b.until.Sub(b.cfg.Now())
	if d < 0 {
		d = 0
	}
	return d
}

// setState transitions and updates instrumentation; callers hold b.mu.
func (b *Breaker) setState(s BreakerState) {
	b.state = s
	if c := b.transitions[s]; c != nil {
		c.Inc()
	}
	if b.stateGauge != nil {
		b.stateGauge.Set(int64(s))
	}
}

// reject counts a fast-failed call; callers hold b.mu.
func (b *Breaker) reject() {
	if b.rejected != nil {
		b.rejected.Inc()
	}
}
