// Package obs is Genie's observability substrate: request-scoped
// tracing and a unified metrics registry shared by every layer of the
// serving stack (gateway HTTP handler, serve engine, runtime sessions,
// transport RPC, backend execution).
//
// The paper's core claim is that disaggregation works only when the
// system can see semantic structure end-to-end; this package makes the
// stack able to see *itself* end-to-end. A Span carries a trace ID from
// the gateway through the engine's admission/queue/batch machinery,
// across the wire (the transport frames an envelope field), and into
// the backend's per-graph execution — so "where did this request's
// 40 ms go?" has an answer. A Registry replaces the per-package private
// counters with one process-wide namespace exposed in Prometheus text
// format.
//
// Both halves are zero-dependency and cheap when idle: with no tracer
// configured, span creation is a nil-check fast path that allocates
// nothing, and metrics are padded atomics (the registry's name lookup
// is lock-striped so kernel-pool workers never serialize on it).
package obs

import "time"

// Clock abstracts time for deterministic tests. serve.Clock satisfies
// it; the zero value of every constructor falls back to the wall clock.
type Clock interface {
	Now() time.Time
}

// wallClock is the production clock.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }
