package backend

import (
	"bytes"
	"math/rand"
	"testing"

	"genie/internal/device"
	"genie/internal/quant"
	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// End-to-end tests for the negotiated wire tier (DESIGN.md §11) over an
// in-process pipe: feature grants, dedup refs, delta uploads, frame
// compression, crash recovery, and — the load-bearing invariant — byte
// identity with the legacy protocol when features stay off.

// wirePair starts a server goroutine over a pipe and returns a client
// plus its traffic counters.
func wirePair(t *testing.T, srv *Server) (*transport.Client, *transport.Counters) {
	t.Helper()
	ctr := &transport.Counters{}
	cc, sc := transport.Pipe(ctr, nil)
	go func() { _ = srv.Serve(sc) }()
	client := transport.NewClient(cc)
	t.Cleanup(func() { client.Close() })
	return client, ctr
}

func bigTensor(seed int64, dims ...int) *tensor.Tensor {
	w := tensor.New(tensor.F32, dims...)
	w.RandN(rand.New(rand.NewSource(seed)), 1)
	return w
}

func TestNegotiateGrantsIntersection(t *testing.T) {
	srv := NewServer(device.A100)
	srv.SetWireFeatures(transport.FeatDedup | transport.FeatDelta)
	client, _ := wirePair(t, srv)
	granted, err := client.Negotiate(nil, transport.FeatAll)
	if err != nil {
		t.Fatal(err)
	}
	if granted != transport.FeatDedup|transport.FeatDelta {
		t.Fatalf("granted %#x, want dedup|delta", granted)
	}
	if got := client.Conn().Features(); got != granted {
		t.Fatalf("conn features %#x != granted %#x", got, granted)
	}
}

func TestDedupSecondUploadIsHashSized(t *testing.T) {
	srv := NewServer(device.A100)
	client, ctr := wirePair(t, srv)
	if _, err := client.Negotiate(nil, transport.FeatAll); err != nil {
		t.Fatal(err)
	}
	w := bigTensor(1, 128, 128) // 64 KiB
	if _, err := client.Upload("a.w", w); err != nil {
		t.Fatal(err)
	}
	sent0, _, _ := ctr.Snapshot()
	if _, err := client.Upload("b.w", w); err != nil {
		t.Fatal(err)
	}
	sent1, _, _ := ctr.Snapshot()
	refBytes := sent1 - sent0
	if refBytes > 128 {
		t.Fatalf("dedup re-upload cost %d bytes on the wire, want <= 128 (hash + key + header)", refBytes)
	}
	got, err := client.Fetch("b.w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), w.Bytes()) {
		t.Fatal("dedup-stored tensor differs from the original")
	}
}

func TestDeltaUploadShipsOnlyChangedRuns(t *testing.T) {
	srv := NewServer(device.A100)
	srv.SetWireFeatures(transport.FeatDelta) // isolate the delta path
	client, ctr := wirePair(t, srv)
	if _, err := client.Negotiate(nil, transport.FeatAll); err != nil {
		t.Fatal(err)
	}
	w := bigTensor(2, 64, 256) // 64 KiB
	if _, err := client.Upload("kv", w); err != nil {
		t.Fatal(err)
	}
	// Touch a handful of values; everything else XORs to zero runs.
	next := w.Clone()
	f := next.F32()
	for i := 0; i < 5; i++ {
		f[i*1000] += 1
	}
	sent0, _, _ := ctr.Snapshot()
	if _, err := client.Upload("kv", next); err != nil {
		t.Fatal(err)
	}
	sent1, _, _ := ctr.Snapshot()
	deltaBytes := sent1 - sent0
	if deltaBytes > int64(next.NumBytes())/8 {
		t.Fatalf("delta upload cost %d bytes, want well under %d/8", deltaBytes, next.NumBytes())
	}
	got, err := client.Fetch("kv", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), next.Bytes()) {
		t.Fatal("delta-reconstructed tensor differs")
	}
}

func TestCompressionShrinksCompressibleUploads(t *testing.T) {
	srv := NewServer(device.A100)
	client, ctr := wirePair(t, srv)
	if _, err := client.Negotiate(nil, transport.FeatCompress); err != nil {
		t.Fatal(err)
	}
	// Zeros deflate to nearly nothing; what matters is that counters see
	// on-wire (compressed) bytes and the payload survives.
	w := tensor.New(tensor.F32, 128, 128)
	if _, err := client.Upload("z", w); err != nil {
		t.Fatal(err)
	}
	sent, _, _ := ctr.Snapshot()
	if sent > int64(w.NumBytes())/4 {
		t.Fatalf("compressed upload counted %d wire bytes for a %d-byte zero tensor", sent, w.NumBytes())
	}
	got, err := client.Fetch("z", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), w.Bytes()) {
		t.Fatal("compressed upload corrupted payload")
	}
}

// TestLegacyBytesIdenticalWithFeaturesOff locks the compatibility
// contract: a client that never negotiates produces exactly the same
// wire bytes as the pre-feature protocol, Cache hints and all.
func TestLegacyBytesIdenticalWithFeaturesOff(t *testing.T) {
	w := bigTensor(3, 16, 16)
	up := transport.EncodeUpload(&transport.Upload{Key: "k", Data: w})

	g := srg.New("legacy")
	in := g.MustAdd(&srg.Node{Op: "input", Ref: "x",
		Output: srg.TensorMeta{Shape: []int{16, 16}}})
	out := g.MustAdd(&srg.Node{Op: "relu", Inputs: []srg.NodeID{in},
		Output: srg.TensorMeta{Shape: []int{16, 16}}})
	plain, err := transport.EncodeExec(&transport.Exec{
		Graph: g,
		Binds: []transport.Binding{{Ref: "x", Inline: w}},
		Want:  []srg.NodeID{out},
	})
	if err != nil {
		t.Fatal(err)
	}
	hinted, err := transport.EncodeExec(&transport.Exec{
		Graph: g,
		Binds: []transport.Binding{{Ref: "x", Inline: w, Cache: false}},
		Want:  []srg.NodeID{out},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, hinted) {
		t.Fatal("zero-valued Cache field changed the exec encoding")
	}

	// Same RPCs through two pipes — one legacy server, one feature-capable
	// server nobody negotiated with — must move identical byte counts.
	run := func(srv *Server) (int64, int64) {
		client, ctr := wirePair(t, srv)
		if _, err := client.Upload("k", w); err != nil {
			t.Fatal(err)
		}
		x := &transport.Exec{
			Graph: g,
			// Cache hints as the naive runtime now sets them: stripped on
			// the wire because no features were negotiated.
			Binds: []transport.Binding{{Ref: "x", Inline: w, Cache: true}},
			Want:  []srg.NodeID{out},
		}
		if _, err := client.Exec(x); err != nil {
			t.Fatal(err)
		}
		s, r, _ := ctr.Snapshot()
		return s, r
	}
	legacy := NewServer(device.A100)
	legacy.SetWireFeatures(0)
	s0, r0 := run(legacy)
	s1, r1 := run(NewServer(device.A100))
	if s0 != s1 || r0 != r1 {
		t.Fatalf("feature-capable server moved (%d,%d) bytes, legacy (%d,%d)", s1, r1, s0, r0)
	}
	if up == nil {
		t.Fatal("unreachable")
	}
}

// TestExecHashRefAfterUpload: weights uploaded (and remembered) can bind
// by hash in a later exec without re-sending bytes.
func TestExecHashRefAfterUpload(t *testing.T) {
	srv := NewServer(device.A100)
	client, ctr := wirePair(t, srv)
	if _, err := client.Negotiate(nil, transport.FeatDedup); err != nil {
		t.Fatal(err)
	}
	w := bigTensor(4, 64, 64)
	g := srg.New("ref")
	in := g.MustAdd(&srg.Node{Op: "input", Ref: "w",
		Output: srg.TensorMeta{Shape: []int{64, 64}}})
	out := g.MustAdd(&srg.Node{Op: "relu", Inputs: []srg.NodeID{in},
		Output: srg.TensorMeta{Shape: []int{64, 64}}})
	x := &transport.Exec{
		Graph: g,
		Binds: []transport.Binding{{Ref: "w", Inline: w, Cache: true}},
		Want:  []srg.NodeID{out},
	}
	// First exec ships the tensor inline (kind 3) and the server caches it.
	if _, err := client.Exec(x); err != nil {
		t.Fatal(err)
	}
	sent0, _, _ := ctr.Snapshot()
	// Second exec must rewrite to a hash ref: tiny on the wire.
	if _, err := client.Exec(x); err != nil {
		t.Fatal(err)
	}
	sent1, _, _ := ctr.Snapshot()
	if refCost := sent1 - sent0; refCost > int64(w.NumBytes())/16 {
		t.Fatalf("hash-ref exec cost %d bytes, want far under the %d-byte tensor", refCost, w.NumBytes())
	}
}

// TestCrashFlushesDedupAndRecovers: after a server crash the client's
// first cheap-path attempt fails recoverably and falls back to a full
// upload; callers never see the cache miss.
func TestCrashFlushesDedupAndRecovers(t *testing.T) {
	srv := NewServer(device.A100)
	client, _ := wirePair(t, srv)
	if _, err := client.Negotiate(nil, transport.FeatAll); err != nil {
		t.Fatal(err)
	}
	w := bigTensor(5, 32, 32)
	if _, err := client.Upload("a", w); err != nil {
		t.Fatal(err)
	}
	if err := client.Crash(); err != nil {
		t.Fatal(err)
	}
	// Dedup would hash-ref here; the server lost its content cache, so
	// the client must transparently fall back and still succeed.
	if _, err := client.Upload("b", w); err != nil {
		t.Fatalf("upload after crash: %v", err)
	}
	got, err := client.Fetch("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), w.Bytes()) {
		t.Fatal("post-crash upload corrupted payload")
	}
}

// TestQuantPolicyStoresInt8 verifies upload admission rewrites weight
// tensors under the server's quant policy while leaving other keys f32.
func TestQuantPolicyStoresInt8(t *testing.T) {
	srv := NewServer(device.A100)
	srv.SetQuantPolicy(quant.Int8)
	client, _ := wirePair(t, srv)
	w := bigTensor(6, 32, 48)
	if _, err := client.Upload("blk.attn.wq.w", w); err != nil {
		t.Fatal(err)
	}
	stored, err := client.Fetch("blk.attn.wq.w", 0)
	if err != nil {
		t.Fatal(err)
	}
	if stored.DType() != tensor.I8 {
		t.Fatalf("weight stored as %v, want i8", stored.DType())
	}
	if stored.Scales() == nil || stored.QuantAxis() != 1 {
		t.Fatal("quantized weight lost its per-column scales on the wire")
	}
	act := bigTensor(7, 4, 4)
	if _, err := client.Upload("kv.cache", act); err != nil {
		t.Fatal(err)
	}
	other, err := client.Fetch("kv.cache", 0)
	if err != nil {
		t.Fatal(err)
	}
	if other.DType() != tensor.F32 {
		t.Fatalf("non-weight key stored as %v, want untouched f32", other.DType())
	}
}
