package tensor

import (
	"fmt"
	"strings"
)

// Shape describes the extent of each tensor dimension, outermost first.
type Shape []int

// NumElements returns the total element count (1 for a scalar shape).
func (s Shape) NumElements() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// Clone returns an independent copy.
func (s Shape) Clone() Shape {
	out := make(Shape, len(s))
	copy(out, s)
	return out
}

// Equal reports whether two shapes have identical rank and extents.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Valid reports whether every extent is positive.
func (s Shape) Valid() bool {
	for _, d := range s {
		if d <= 0 {
			return false
		}
	}
	return true
}

// String renders like "[2 3 4]".
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Strides returns row-major (C-contiguous) strides in elements.
func (s Shape) Strides() []int {
	st := make([]int, len(s))
	acc := 1
	for i := len(s) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= s[i]
	}
	return st
}

// BroadcastShapes computes the NumPy-style broadcast result of a and b.
// Dimensions align from the right; a dimension of 1 stretches.
func BroadcastShapes(a, b Shape) (Shape, error) {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(Shape, n)
	for i := 0; i < n; i++ {
		da, db := 1, 1
		if i >= n-len(a) {
			da = a[i-(n-len(a))]
		}
		if i >= n-len(b) {
			db = b[i-(n-len(b))]
		}
		switch {
		case da == db:
			out[i] = da
		case da == 1:
			out[i] = db
		case db == 1:
			out[i] = da
		default:
			return nil, fmt.Errorf("tensor: cannot broadcast %v with %v", a, b)
		}
	}
	return out, nil
}
