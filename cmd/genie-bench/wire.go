package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"genie/internal/backend"
	"genie/internal/device"
	"genie/internal/models"
	"genie/internal/quant"
	"genie/internal/runtime"
	"genie/internal/tensor"
	"genie/internal/tensor/ops"
	"genie/internal/transport"
)

// printWire measures the raw-speed tier (DESIGN.md §11) live: the
// quantized decode-step kernels against f32, and bytes-on-wire for the
// blind disaggregation modes with and without the negotiated wire
// features (dedup + delta + compression). Real kernels, real framed
// bytes over an in-process pipe — wall-clock CPU numbers, not the
// tables' modeled GPU times.
func printWire() {
	fmt.Println("== W: raw-speed tier (quantized kernels + wire features) ==")
	printWireKernels()
	printWireBytes()
}

// timeDecodeMatMul times the m=1 GEMV-shaped matmul (one decode step's
// dominant kernel), best of 5.
func timeDecodeMatMul(a, w *tensor.Tensor) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 5; i++ {
		start := time.Now()
		out, err := ops.MatMul(a, w)
		if err != nil {
			log.Fatal(err)
		}
		if el := time.Since(start); el < best {
			best = el
		}
		out.Release()
	}
	return best
}

func printWireKernels() {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][2]int{{1024, 4096}, {2048, 2048}} {
		k, n := dims[0], dims[1]
		a := tensor.New(tensor.F32, 1, k)
		a.RandN(rng, 1)
		w := tensor.New(tensor.F32, k, n)
		w.RandN(rng, 0.02)
		qw, err := quant.QuantizeLinear(w, 1)
		if err != nil {
			log.Fatal(err)
		}
		hw := w.ToF16()
		f32t := timeDecodeMatMul(a, w)
		i8t := timeDecodeMatMul(a, qw)
		f16t := timeDecodeMatMul(a, hw)
		fmt.Printf("decode matmul 1x%dx%d: f32 %7.1fµs | int8 %7.1fµs (%.2fx) | f16 %7.1fµs (%.2fx)\n",
			k, n,
			float64(f32t.Microseconds()), float64(i8t.Microseconds()),
			float64(f32t)/float64(i8t),
			float64(f16t.Microseconds()), float64(f32t)/float64(f16t))
	}
	fmt.Println("(m=1 decode shape; int8 runs the packed SWAR kernel — four weight columns per")
	fmt.Println(" 64-bit multiply, exact int32 dots, dequant on store. f16 stays slower than f32")
	fmt.Println(" at m=1: its k*n widen pass amortizes over one output row — pick f16 for")
	fmt.Println(" capacity, int8 for speed)")
}

// wireRun generates tokens in one mode over a fresh in-process backend
// and reports total on-wire bytes (both directions) and tokens moved.
func wireRun(mode runtime.Mode, negotiate bool) (bytesTotal int64, tokens int) {
	srv := backend.NewServer(device.A100)
	ctr := &transport.Counters{}
	cc, sc := transport.Pipe(ctr, nil)
	defer cc.Close()
	go func() { _ = srv.Serve(sc) }()
	client := transport.NewClient(cc)
	if negotiate {
		if _, err := client.Negotiate(nil, transport.FeatAll); err != nil {
			log.Fatal(err)
		}
	}
	r := &runtime.LLMRunner{
		Model:    models.NewGPT(rand.New(rand.NewSource(1)), models.TinyGPT),
		EP:       client,
		Counters: ctr,
	}
	const steps = 8
	res, err := r.Generate(mode, []int64{3, 14, 15, 9}, steps)
	if err != nil {
		log.Fatal(err)
	}
	return ctr.Total(), len(res.Tokens)
}

func printWireBytes() {
	fmt.Printf("%-16s %14s %14s %9s\n", "mode", "legacy B/tok", "feats B/tok", "reduction")
	for _, m := range []runtime.Mode{runtime.ModeNaive, runtime.ModeDeltaKV} {
		legacyB, legacyTok := wireRun(m, false)
		featB, featTok := wireRun(m, true)
		lpt := float64(legacyB) / float64(legacyTok)
		fpt := float64(featB) / float64(featTok)
		fmt.Printf("%-16s %14.0f %14.0f %8.1fx\n", m, lpt, fpt, lpt/fpt)
	}
	fmt.Println("(8 decode steps over TinyGPT on an in-process pipe; feats = dedup + delta +")
	fmt.Println(" compression negotiated via MsgHello. Naive mode re-ships every weight per")
	fmt.Println(" call, so dedup collapses repeats to 32-byte refs — the reduction shrinks")
	fmt.Println(" toward compression-only as runs lengthen past the first full send)")
	fmt.Println()
}
