package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// RetrynakedAnalyzer flags naked retry loops: a for-loop that re-issues
// a remote operation when it fails, with nothing between attempts — no
// sleep, no backoff, no select, no context check. Under a dead or
// overloaded backend such a loop becomes a busy-wait that hammers the
// very endpoint it is waiting on; every retry site must either pace
// itself (time.Sleep / timer / select) or observe cancellation
// (ctx.Done / ctx.Err), and most should simply use transport.Retrier,
// which does both.
//
// A loop is a retry loop when its control flow is error-driven: the
// loop condition tests an error against nil, or the body continues on
// `err != nil`, or exits only on `err == nil`. Loops that merely
// propagate an error out (`if err != nil { return err }`) are not
// retries and are never flagged.
var RetrynakedAnalyzer = &Analyzer{
	Name: "retrynaked",
	Doc:  "report retry loops around remote calls with no backoff or cancellation",
	AppliesTo: func(scope string) bool {
		return hasPrefixPath(scope, "genie/internal")
	},
	Run: runRetrynaked,
}

func runRetrynaked(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			s := retryScan{info: pass.Info, prog: pass.Prog}
			if loop.Cond != nil && s.errCompare(loop.Cond, token.NEQ) {
				// `for err != nil { ... }` keeps looping until success.
				s.retries = true
			}
			walkIgnoringFuncLits(loop.Body, s.visit)
			if s.remote != nil && s.retries && !s.paced {
				pass.Reportf(s.remote.Pos(), "retry loop re-issues %s with no backoff or cancellation; sleep between attempts, check the context, or use transport.Retrier",
					s.remoteName)
			}
			return true
		})
	}
}

// retryScan accumulates evidence about one for-loop body: a remote call
// worth retrying, error-driven control flow, and any pacing or
// cancellation signal that would make the retry polite.
type retryScan struct {
	info       *types.Info
	prog       *Program // interprocedural summaries (may be nil)
	remote     ast.Node // first remote call found in the body
	remoteName string
	retries    bool // error-driven control flow (continue-on-error / exit-on-success)
	paced      bool // sleep / timer / select / channel recv / ctx check
}

func (s *retryScan) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		s.classifyCall(n)
	case *ast.SelectStmt:
		// A select blocks on channels (or polls deliberately with
		// default); either way the author thought about scheduling.
		s.paced = true
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			s.paced = true // channel receive gates the next attempt
		}
	case *ast.IfStmt:
		s.classifyBranch(n)
	case *ast.ForStmt:
		// A nested loop is its own site; Inspect visits it separately.
		return false
	}
	return true
}

// classifyCall buckets one call: remote operation, pacing primitive,
// or neither.
func (s *retryScan) classifyCall(call *ast.CallExpr) {
	fn := calleeFunc(s.info, call)
	if fn == nil {
		return
	}
	name, pkg := fn.Name(), funcPkgPath(fn)
	switch pkg {
	case "time":
		switch name {
		case "Sleep", "After", "NewTimer", "NewTicker", "Tick":
			s.paced = true
		}
	case "context":
		// ctx.Done / ctx.Err consulted inside the loop counts as
		// cancellation-awareness.
		if name == "Done" || name == "Err" {
			s.paced = true
		}
	case "genie/internal/transport":
		if strings.Contains(recvTypeString(fn), "Retrier") {
			s.paced = true // Retrier owns backoff and ctx internally
			return
		}
		s.noteRemote(call, "transport."+name)
	case "genie/internal/runtime":
		// Methods of the runtime.Endpoint interface are remote by
		// definition — every implementation crosses the wire.
		if strings.HasSuffix(recvTypeString(fn), "runtime.Endpoint") {
			s.noteRemote(call, "Endpoint."+name)
		}
	default:
		// Interprocedural: a module-local helper whose summary says it
		// reaches a remote operation is a retry target the AST-local
		// pass cannot see. Pacing stays a loop-body-local judgment —
		// a sleep buried inside the callee is not backoff between
		// *these* attempts.
		if s.prog != nil {
			if sum, ok := s.prog.Summary(fn); ok && sum.Remote {
				s.noteRemote(call, sum.RemoteName+" (via "+name+")")
			}
		}
	}
}

func (s *retryScan) noteRemote(call *ast.CallExpr, name string) {
	if s.remote == nil {
		s.remote = call
		s.remoteName = name
	}
}

// classifyBranch recognizes the two error-driven retry shapes:
// continue when err != nil, or break/return only when err == nil. An
// `if err != nil { return err }` propagates the failure out of the
// loop and is not a retry.
func (s *retryScan) classifyBranch(ifs *ast.IfStmt) {
	switch {
	case s.errCompare(ifs.Cond, token.NEQ) && bodyBranches(ifs.Body, token.CONTINUE):
		s.retries = true
	case s.errCompare(ifs.Cond, token.EQL) && exitsLoop(ifs.Body):
		s.retries = true
	}
}

// errCompare reports whether cond contains a comparison of an
// error-typed operand against nil with the given operator, anywhere in
// the condition (so `err != nil && n < max` still counts).
func (s *retryScan) errCompare(cond ast.Expr, op token.Token) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != op {
			return true
		}
		x, y := unparen(be.X), unparen(be.Y)
		if isNilIdent(s.info, y) && s.isErrExpr(x) {
			found = true
		}
		if isNilIdent(s.info, x) && s.isErrExpr(y) {
			found = true
		}
		return !found
	})
	return found
}

func (s *retryScan) isErrExpr(e ast.Expr) bool {
	tv, ok := s.info.Types[e]
	return ok && tv.Type != nil && isErrorType(tv.Type)
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// bodyBranches reports whether the block contains an unlabeled branch
// statement of the given kind, not nested under another loop or switch
// (where it would bind to the inner statement).
func bodyBranches(body *ast.BlockStmt, kind token.Token) bool {
	found := false
	walkIgnoringFuncLits(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			if kind == token.BREAK {
				return false // break binds to the switch/select
			}
		case *ast.BranchStmt:
			if n.Tok == kind && n.Label == nil {
				found = true
			}
		}
		return !found
	})
	return found
}

// exitsLoop reports whether the block leaves the loop: a return or an
// unlabeled break.
func exitsLoop(body *ast.BlockStmt) bool {
	if bodyBranches(body, token.BREAK) {
		return true
	}
	found := false
	walkIgnoringFuncLits(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.ReturnStmt); ok {
			found = true
		}
		return !found
	})
	return found
}
