// Command streaming demonstrates the production serving surface on top
// of semantics-aware disaggregation: tokens stream to the caller as each
// remote decode step completes, the context cancels generation
// mid-stream, and the lineage manager keeps the remote KV cache
// recoverable the whole time. Everything runs against a real TCP
// backend.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"genie"
)

func main() {
	srv := genie.NewServer(genie.A100)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go func() { _ = genie.Serve(srv, l) }()

	client, err := genie.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	rng := rand.New(rand.NewSource(7))
	runner := &genie.LLMRunner{
		Model:    genie.NewGPTModel(rng, genie.TinyGPT),
		EP:       client,
		Counters: client.Conn().Counters(),
	}
	prompt := []int64{11, 42, 7, 3, 19}

	// Full stream: every token arrives as its decode step completes.
	fmt.Println("streaming 8 tokens (semantics-aware mode, live TCP backend):")
	start := time.Now()
	for tok := range runner.Stream(context.Background(), genie.ModeSemAware, prompt, 8) {
		if tok.Err != nil {
			log.Fatal(tok.Err)
		}
		fmt.Printf("  t=%6s  token[%d] = %d\n",
			time.Since(start).Round(time.Millisecond), tok.Index, tok.ID)
	}

	// Cancellation: the client walks away after three tokens; generation
	// stops at the next step boundary instead of burning the backend.
	fmt.Println("\ncancelling after 3 tokens:")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	received := 0
	for tok := range runner.Stream(ctx, genie.ModeSemAware, prompt, 100) {
		if tok.Err != nil {
			fmt.Printf("  stream ended: %v\n", tok.Err)
			break
		}
		received++
		fmt.Printf("  token[%d] = %d\n", tok.Index, tok.ID)
		if received == 3 {
			cancel()
		}
	}
	fmt.Printf("backend served %d tokens of a 100-token request — the rest was never computed\n", received)

	sent, recv, calls := client.Conn().Counters().Snapshot()
	fmt.Printf("\ntotal wire traffic: %.1f KB sent, %.1f KB received, %d RPCs\n",
		float64(sent)/1e3, float64(recv)/1e3, calls)
}
