package obs

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The registry is the process-wide metric namespace. Mutating a metric
// is lock-free (padded atomics); looking one up by name goes through a
// lock-striped shard table so the kernel worker pool and every lane
// goroutine can resolve handles concurrently without serializing on one
// mutex. Callers are expected to resolve handles once and hold them —
// the stripes make the occasional dynamic lookup cheap, not the per-
// observation path.

// shardCount stripes the name table; must be a power of two.
const shardCount = 16

// Registry holds counters, gauges, and histograms under Prometheus-
// style names with optional fixed labels.
type Registry struct {
	shards [shardCount]shard

	famMu    sync.Mutex
	families map[string]*family
}

type shard struct {
	mu sync.RWMutex
	m  map[string]any
}

// family is one exposition family: all series sharing a base name.
type family struct {
	name, help, typ string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	r := &Registry{families: map[string]*family{}}
	for i := range r.shards {
		r.shards[i].m = map[string]any{}
	}
	return r
}

// seriesKey renders name plus label pairs into the exposition form,
// e.g. genie_transport_sent_bytes_total{kind="exec"}. Labels are
// key,value pairs; an odd count panics (programming error).
func seriesKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list for %s: %v", name, labels))
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) shardFor(key string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return &r.shards[h.Sum32()&(shardCount-1)]
}

// register resolves or creates the series under key, enforcing that a
// name keeps one metric type for its lifetime.
func (r *Registry) register(name, help, typ, key string, mk func() any) any {
	r.famMu.Lock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
	}
	if f.typ != typ {
		r.famMu.Unlock()
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	r.famMu.Unlock()

	s := r.shardFor(key)
	s.mu.RLock()
	m, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		return m
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.m[key]; ok {
		return m
	}
	m = mk()
	s.m[key] = m
	return m
}

// Counter returns (creating on first use) a monotonically increasing
// counter. labels are fixed key,value pairs baked into the series name.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	key := seriesKey(name, labels)
	return r.register(name, help, "counter", key, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns (creating on first use) a settable gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	key := seriesKey(name, labels)
	return r.register(name, help, "gauge", key, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns (creating on first use) a fixed-bucket histogram.
// bounds are ascending upper bounds; nil uses DefBuckets. The first
// caller's bounds win; later callers must pass identical or nil bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	key := seriesKey(name, labels)
	h := r.register(name, help, "histogram", key, func() any { return newHistogram(bounds) }).(*Histogram)
	return h
}

// pad fills a cache line beyond an 8-byte atomic so adjacent counters
// never false-share.
type pad [56]byte

// Counter is a lock-free monotone counter.
type Counter struct {
	v atomic.Int64
	_ pad
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a programming error; they are not
// checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a lock-free instantaneous value.
type Gauge struct {
	v atomic.Int64
	_ pad
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets spans 50µs–20s in roughly 3× steps — wide enough for a
// decode step at one end and a queued batch request at the other.
var DefBuckets = []float64{
	50e-6, 150e-6, 500e-6, 1.5e-3, 5e-3, 15e-3, 50e-3,
	150e-3, 500e-3, 1.5, 5, 20,
}

// Histogram is a fixed-bucket histogram. Observation is lock-free: each
// bucket is its own padded atomic (striping contention across bounds),
// and the sum is a CAS loop over float bits.
type Histogram struct {
	bounds  []float64
	buckets []histCell
	count   atomic.Int64
	_       pad
	sumBits atomic.Uint64
	_       pad
}

type histCell struct {
	n atomic.Int64
	_ pad
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must ascend")
		}
	}
	return &Histogram{bounds: bounds, buckets: make([]histCell, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].n.Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds (the Prometheus
// convention for latency histograms).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns total observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0..1) by linear interpolation
// inside the bucket holding that rank — the registry-side replacement
// for sorting raw samples with metrics.Percentile when only the
// histogram survives.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.buckets {
		n := float64(h.buckets[i].n.Load())
		if cum+n >= rank || i == len(h.buckets)-1 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := lo
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			if n == 0 {
				return lo
			}
			frac := (rank - cum) / n
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}
