// Package simnet is a discrete-event simulator for paper-scale
// experiments: virtual time, serial resources (GPUs, links), and an event
// queue. The evaluation cannot move 149 GB of weights through a real
// socket per data point, so Table 2/3 regeneration executes the *same
// plan structure* (calls, transfers, kernels) against simulated resources
// with calibrated parameters — see DESIGN.md §1 for why this preserves
// the paper's ratios.
package simnet

import (
	"container/heap"
	"time"
)

// Sim is a discrete-event simulation with virtual time.
type Sim struct {
	now    time.Duration
	queue  eventHeap
	nextID int64
}

type event struct {
	at  time.Duration
	seq int64 // FIFO tie-break for determinism
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// New creates an empty simulation at t=0.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Schedule enqueues fn to run after delay d (>= 0).
func (s *Sim) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.nextID++
	heap.Push(&s.queue, event{at: s.now + d, seq: s.nextID, fn: fn})
}

// Run processes events until the queue drains, returning the final time.
func (s *Sim) Run() time.Duration {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(event)
		s.now = e.at
		e.fn()
	}
	return s.now
}

// Resource is a serial, FIFO resource on the virtual timeline (one GPU
// queue, one link direction). It supports both the closed-form style
// (ReserveAt) used by sequential clients and event-driven use.
type Resource struct {
	// Name labels the resource in traces.
	Name string
	free time.Duration
	busy time.Duration
}

// NewResource creates an idle resource.
func NewResource(name string) *Resource { return &Resource{Name: name} }

// ReserveAt books the resource for dur starting no earlier than at;
// returns the actual [start, end) of the reservation.
func (r *Resource) ReserveAt(at, dur time.Duration) (start, end time.Duration) {
	start = at
	if r.free > start {
		start = r.free
	}
	end = start + dur
	r.free = end
	r.busy += dur
	return start, end
}

// Busy returns accumulated busy time (the GPU-utilization numerator).
func (r *Resource) Busy() time.Duration { return r.busy }

// FreeAt returns when the resource next becomes idle.
func (r *Resource) FreeAt() time.Duration { return r.free }

// Reset clears accounting and availability.
func (r *Resource) Reset() { r.free, r.busy = 0, 0 }
