package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic clock for trace tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func TestDisabledPathIsNilAndAllocationFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		c, s := StartSpan(ctx, "noop")
		s.End()
		s.SetAttr("k", "v")
		if s != nil || c != ctx {
			t.Fatal("disabled path must return nil span and unchanged ctx")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %v per op, want 0", allocs)
	}
	// Nil-tracer methods are all no-ops.
	var tr *Tracer
	if c, s := tr.StartRoot(ctx, "x"); s != nil || c != ctx {
		t.Fatal("nil tracer StartRoot must be a no-op")
	}
	tr.Stop()
	if tr.Snapshot() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer snapshot must be empty")
	}
	// Nil ctx (legacy internal call sites) must not panic.
	if s := SpanFromContext(nil); s != nil {
		t.Fatal("nil ctx has no span")
	}
}

func TestSpanTreeParentingAndClock(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracer(TracerConfig{Proc: "test", Clock: clk, Capacity: 64})
	defer tr.Stop()

	ctx, root := tr.StartRoot(context.Background(), "root")
	clk.Advance(10 * time.Millisecond)
	cctx, child := StartSpan(ctx, "child")
	child.SetAttrInt("tokens", 3)
	clk.Advance(5 * time.Millisecond)
	_, grand := StartSpan(cctx, "grandchild")
	grand.End()
	child.End()
	clk.Advance(time.Millisecond)
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	r, c, g := byName["root"], byName["child"], byName["grandchild"]
	if r.Parent != 0 || c.Parent != r.ID || g.Parent != c.ID {
		t.Fatalf("parent links wrong: root=%+v child=%+v grand=%+v", r, c, g)
	}
	if c.Trace != r.Trace || g.Trace != r.Trace {
		t.Fatal("trace ID must be shared down the tree")
	}
	if r.Dur != 16*time.Millisecond {
		t.Fatalf("root duration %v, want 16ms", r.Dur)
	}
	if c.Dur != 5*time.Millisecond {
		t.Fatalf("child duration %v, want 5ms", c.Dur)
	}
	if len(c.Attrs) != 1 || c.Attrs[0].Key != "tokens" || c.Attrs[0].Val != "3" {
		t.Fatalf("child attrs %+v", c.Attrs)
	}
	if r.Proc != "test" {
		t.Fatalf("proc label %q", r.Proc)
	}
}

func TestStartRemoteLinksCrossProcessParent(t *testing.T) {
	tr := NewTracer(TracerConfig{Proc: "server", Capacity: 16})
	defer tr.Stop()
	ctx, s := tr.StartRemote(context.Background(), 0xabc, 42, "backend.exec")
	if s == nil {
		t.Fatal("remote span with live trace must be created")
	}
	if s.Trace != 0xabc || s.Parent != 42 {
		t.Fatalf("remote span %+v", s)
	}
	// Children hang off the remote span as usual.
	_, child := StartSpan(ctx, "inner")
	if child.Parent != s.ID || child.Trace != 0xabc {
		t.Fatalf("remote child %+v", child)
	}
	// Zero trace = caller not tracing = no span.
	if _, none := tr.StartRemote(context.Background(), 0, 7, "x"); none != nil {
		t.Fatal("zero trace must not create spans")
	}
}

func TestRecorderRingWrapsOldestFirst(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 4})
	defer tr.Stop()
	for i := 0; i < 7; i++ {
		_, s := tr.StartRoot(context.Background(), string(rune('a'+i)))
		s.End()
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	want := []string{"d", "e", "f", "g"}
	for i, s := range spans {
		if s.Name != want[i] {
			t.Fatalf("ring order %d = %q, want %q", i, s.Name, want[i])
		}
	}
}

func TestSnapshotAfterStopStillServesRing(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 8})
	_, s := tr.StartRoot(context.Background(), "before")
	s.End()
	if got := len(tr.Snapshot()); got != 1 {
		t.Fatalf("pre-stop snapshot %d spans", got)
	}
	tr.Stop()
	tr.Stop() // idempotent
	if got := len(tr.Snapshot()); got != 1 {
		t.Fatalf("post-stop snapshot %d spans, want 1", got)
	}
}

// BenchmarkSpanDisabled pins the zero-cost contract: span creation with
// no tracer in the context must be a nil check.
func BenchmarkSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "op")
		s.End()
	}
}

// BenchmarkSpanEnabled measures the traced path (mint + record).
func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer(TracerConfig{Capacity: 4096})
	defer tr.Stop()
	ctx, root := tr.StartRoot(context.Background(), "root")
	defer root.End()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "op")
		s.End()
	}
}
