// Command recommender demonstrates Table 1's recommendation row:
// DLRM-style inference with Zipf-skewed sparse features. The frontend
// tags the embedding lookups as the sparse phase; the workload's hot/cold
// split quantifies the "intelligent data tiering" opportunity — the hot
// head of each table can live on the accelerator while the cold tail
// stays in host memory, with semantic knowledge (not DMA traces) telling
// the two apart.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"genie"
	"genie/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	model := genie.NewDLRMModel(rng, genie.TinyDLRM)

	// A Zipf-skewed query trace: most accesses hit few rows.
	trace := workload.RecTrace{
		Requests:      2000,
		DenseFeatures: genie.TinyDLRM.DenseFeatures,
		TableRows:     genie.TinyDLRM.TableRows,
		IDsPerTable:   4,
		ZipfS:         1.4,
	}
	reqs := trace.Generate(99)
	for _, frac := range []float64{0.01, 0.05, 0.10, 0.25} {
		hits := workload.HotSetFraction(reqs, trace.TableRows, frac)
		fmt.Printf("hottest %4.0f%% of embedding rows absorb %5.1f%% of lookups\n",
			frac*100, hits*100)
	}

	// Capture one request and let the frontend find the sparse phase.
	first := reqs[0]
	b, _ := model.BuildForward(genie.DLRMRequest{
		Dense:     genie.FromF32(genie.Shape{1, trace.DenseFeatures}, first.Dense),
		SparseIDs: first.Sparse,
	})
	rep := genie.Annotate(b.Graph())
	fmt.Printf("\nfrontend tagged %d sparse/dense nodes; phases: %v\n",
		rep.Tagged["sparse_dense"], rep.Phases)

	// Score a few requests for real.
	fmt.Println("\nscoring 5 requests:")
	for i := 0; i < 5; i++ {
		r := reqs[i]
		bb, oo := model.BuildForward(genie.DLRMRequest{
			Dense:     genie.FromF32(genie.Shape{1, trace.DenseFeatures}, r.Dense),
			SparseIDs: r.Sparse,
		})
		vals, err := genie.ExecuteLocal(bb)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  request %d: score %+.4f\n", i, vals[oo.Score].F32()[0])
	}

	// Show the tiering decision the sparse phase enables: per-table
	// bytes if the hot 10% is pinned on-device.
	fmt.Println("\ntiering plan (hot 10% on-device):")
	for ti, rows := range trace.TableRows {
		tableBytes := rows * genie.TinyDLRM.EmbedDim * 4
		hotBytes := tableBytes / 10
		fmt.Printf("  table %d: %6d B total, %5d B pinned hot, %6d B cold in host memory\n",
			ti, tableBytes, hotBytes, tableBytes-hotBytes)
	}
}
