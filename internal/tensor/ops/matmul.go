package ops

import (
	"fmt"

	"genie/internal/compute"
	"genie/internal/tensor"
)

// Matmul kernels: blocked/tiled, register-blocked in the K direction,
// and parallelized over row bands on the compute pool.
//
// Determinism contract: for every output element out[i,j] the
// contributions a[i,kk]*b[kk,j] are added in strictly increasing kk
// order, exactly as the textbook ikj loop adds them — K-tiling visits
// kk blocks in order and the 4-wide unroll performs its four adds as
// separate sequentially-rounded float32 statements. Combined with
// row-band parallelism (each out row is written by exactly one chunk),
// the kernel is bit-identical to its serial form at any worker count.
const (
	// mmKTile × mmNTile bounds the b-panel a band re-reads per pass:
	// 64×256 float32s = 64 KiB, sized to sit in L2 while a row band
	// streams over it.
	mmKTile = 64
	mmNTile = 256
)

// minChunkWork is roughly how many scalar operations one ParallelFor
// chunk should amortize; grains are derived from shapes only, so chunk
// boundaries never depend on worker count.
const minChunkWork = 32 << 10

// grainBy sizes a grain so each chunk covers about minChunkWork scalar
// ops, given the per-item cost.
func grainBy(workPerItem int) int {
	if workPerItem < 1 {
		workPerItem = 1
	}
	g := minChunkWork / workPerItem
	if g < 1 {
		g = 1
	}
	return g
}

// MatMul computes a @ b for a [m,k] and b [k,n], returning [m,n].
// Rank-3 a ([batch,m,k]) is supported with shared b: because b is
// shared and a and out are contiguous, the batch collapses into the row
// dimension and runs as one [batch·m,k]@[k,n] product, so every row
// band parallelizes uniformly regardless of the batch/row split.
func MatMul(a, b *tensor.Tensor) (*tensor.Tensor, error) {
	as, bs := a.Shape(), b.Shape()
	if bs.Rank() != 2 {
		return nil, fmt.Errorf("ops: matmul rhs must be rank 2, got %v", bs)
	}
	var m, k int
	switch as.Rank() {
	case 2:
		m, k = as[0], as[1]
	case 3:
		m, k = as[0]*as[1], as[2]
	default:
		return nil, fmt.Errorf("ops: matmul lhs must be rank 2 or 3, got %v", as)
	}
	if k != bs[0] {
		return nil, fmt.Errorf("ops: matmul shape mismatch %v @ %v", as, bs)
	}
	var out *tensor.Tensor
	if as.Rank() == 3 {
		out = tensor.NewScratch(tensor.F32, as[0], as[1], bs[1])
	} else {
		out = tensor.NewScratch(tensor.F32, as[0], bs[1])
	}
	switch b.DType() {
	case tensor.F32:
		matmul2d(a.F32(), b.F32(), out.F32(), m, k, bs[1])
	case tensor.I8:
		if b.Scales() == nil || b.QuantAxis() != 1 {
			out.Release()
			return nil, fmt.Errorf("ops: i8 matmul rhs needs per-column scales (axis 1)")
		}
		matmulQ8(a.F32(), b, out.F32(), m, k, bs[1])
	case tensor.F16:
		matmulF16(a.F32(), b.F16(), out.F32(), m, k, bs[1])
	default:
		out.Release()
		return nil, fmt.Errorf("ops: matmul rhs dtype %s unsupported", b.DType())
	}
	return out, nil
}

// matmul2d accumulates a @ b into out, which MUST arrive zeroed (the
// scratch arena guarantees it; see the dirty-recycle regression test in
// internal/tensor). Row bands are independent, so the parallel split is
// over m.
func matmul2d(a, b, out []float32, m, k, n int) {
	compute.ParallelFor(m, grainBy(2*k*n), func(i0, i1 int) {
		matmulBand(a, b, out, i0, i1, k, n)
	})
}

// matmulBand computes rows [i0,i1) of out. Loop order (jc, kc, i, kk, j)
// keeps a 64 KiB panel of b hot across the whole band while the inner
// loop streams over contiguous slices of b and out. The 4-wide K unroll
// keeps each out element in a register across four updates — the
// register blocking that removes three of every four out loads/stores —
// without reordering any addition.
func matmulBand(a, b, out []float32, i0, i1, k, n int) {
	for jc := 0; jc < n; jc += mmNTile {
		jw := min(mmNTile, n-jc)
		for kc := 0; kc < k; kc += mmKTile {
			kw := min(mmKTile, k-kc)
			for i := i0; i < i1; i++ {
				arow := a[i*k+kc : i*k+kc+kw]
				orow := out[i*n+jc : i*n+jc+jw]
				kk := 0
				for ; kk+4 <= kw; kk += 4 {
					a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
					r0 := (kc + kk) * n
					b0 := b[r0+jc : r0+jc+jw]
					b1 := b[r0+n+jc : r0+n+jc+jw]
					b2 := b[r0+2*n+jc : r0+2*n+jc+jw]
					b3 := b[r0+3*n+jc : r0+3*n+jc+jw]
					for j := range orow {
						s := orow[j]
						s += a0 * b0[j]
						s += a1 * b1[j]
						s += a2 * b2[j]
						s += a3 * b3[j]
						orow[j] = s
					}
				}
				for ; kk < kw; kk++ {
					av := arow[kk]
					r := (kc + kk) * n
					brow := b[r+jc : r+jc+jw]
					for j := range brow {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// MatMulT computes a @ bᵀ for a [m,k] and b [n,k], returning [m,n]. This
// is the attention-score kernel (Q @ Kᵀ). Both operands are walked
// row-major, so each output element is one dot product of contiguous
// rows; the parallel split follows the larger output dimension because
// decode steps have m=1 (one query row) while the key count n grows
// with the history.
func MatMulT(a, b *tensor.Tensor) (*tensor.Tensor, error) {
	as, bs := a.Shape(), b.Shape()
	if as.Rank() != 2 || bs.Rank() != 2 || as[1] != bs[1] {
		return nil, fmt.Errorf("ops: matmulT shape mismatch %v @ %vᵀ", as, bs)
	}
	m, k, n := as[0], as[1], bs[0]
	out := tensor.NewScratch(tensor.F32, m, n)
	switch b.DType() {
	case tensor.F32:
		av, bv, ov := a.F32(), b.F32(), out.F32()
		if m >= n {
			compute.ParallelFor(m, grainBy(2*k*n), func(i0, i1 int) {
				matmulTBlock(av, bv, ov, i0, i1, 0, n, k, n)
			})
		} else {
			compute.ParallelFor(n, grainBy(2*k*m), func(j0, j1 int) {
				matmulTBlock(av, bv, ov, 0, m, j0, j1, k, n)
			})
		}
	case tensor.I8:
		if b.Scales() == nil || b.QuantAxis() != 0 {
			out.Release()
			return nil, fmt.Errorf("ops: i8 matmulT rhs needs per-row scales (axis 0)")
		}
		matmulTQ8(a.F32(), b.I8(), b.Scales(), out.F32(), m, k, n)
	case tensor.F16:
		av, bv, ov := a.F32(), b.F16(), out.F32()
		if m >= n {
			compute.ParallelFor(m, grainBy(2*k*n), func(i0, i1 int) {
				matmulTF16Block(av, bv, ov, i0, i1, 0, n, k, n)
			})
		} else {
			compute.ParallelFor(n, grainBy(2*k*m), func(j0, j1 int) {
				matmulTF16Block(av, bv, ov, 0, m, j0, j1, k, n)
			})
		}
	default:
		out.Release()
		return nil, fmt.Errorf("ops: matmulT rhs dtype %s unsupported", b.DType())
	}
	return out, nil
}

// matmulTBlock fills out rows [i0,i1) × columns [j0,j1). The dot
// product accumulates in serial kk order (single accumulator), matching
// the serial reference bit-for-bit.
func matmulTBlock(a, b, out []float32, i0, i1, j0, j1, k, n int) {
	for i := i0; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		for j := j0; j < j1; j++ {
			brow := b[j*k : (j+1)*k]
			var acc float32
			for kk := range arow {
				acc += arow[kk] * brow[kk]
			}
			out[i*n+j] = acc
		}
	}
}
