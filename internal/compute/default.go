package compute

import (
	"os"
	"runtime"
	"strconv"
	"sync"
)

// EnvWorkers is the environment knob that fixes the default pool's
// width at process start. Unset or invalid means GOMAXPROCS;
// GENIE_KERNEL_WORKERS=1 forces every kernel serial — the debugging
// mode for bisecting a suspected parallelism bug (results must not
// change, by the determinism contract; if they do, the kernel's chunks
// overlap and the parity suite should catch it).
const EnvWorkers = "GENIE_KERNEL_WORKERS"

var (
	defMu sync.Mutex
	def   *Pool
)

// The default pool starts with the process so its helper goroutines
// exist before any test takes a metrics.SnapGoroutines baseline —
// lazily spawning them mid-test would read as a leak.
func init() {
	def = NewPool(envWidth())
}

func envWidth() int {
	if s := os.Getenv(EnvWorkers); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 {
			return v
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Default returns the process-wide pool the kernels in
// internal/tensor/ops run on.
func Default() *Pool {
	defMu.Lock()
	defer defMu.Unlock()
	return def
}

// SetDefault installs p as the process-wide pool and returns the
// previous one (which the caller owns and may Stop once quiescent).
// Tests use it to sweep worker counts; production code configures width
// once via Configure.
func SetDefault(p *Pool) *Pool {
	defMu.Lock()
	old := def
	def = p
	defMu.Unlock()
	return old
}

// Configure replaces the default pool with one of the given width (< 1
// = GOMAXPROCS) and stops the previous pool. In-flight ParallelFor
// calls on the old pool complete on their callers; new kernel calls
// pick up the new pool.
func Configure(width int) {
	old := SetDefault(NewPool(width))
	old.Stop()
}

// Workers reports the default pool's width.
func Workers() int { return Default().Width() }

// ParallelFor runs fn over [0,n) on the default pool. See
// (*Pool).ParallelFor for the determinism contract.
func ParallelFor(n, grain int, fn func(start, end int)) {
	Default().ParallelFor(n, grain, fn)
}
