package device

import (
	"testing"
	"time"
)

func TestKernelTimeRoofline(t *testing.T) {
	spec := Spec{PeakFLOPS: 1e12, MemBandwidth: 1e11, LaunchOverhead: time.Microsecond}
	// Compute-bound kernel: 1e12 FLOPs, tiny bytes → ~1 s.
	got := spec.KernelTime(1e12, 1000)
	if got < time.Second || got > time.Second+time.Millisecond {
		t.Errorf("compute-bound kernel %v", got)
	}
	// Memory-bound kernel: tiny FLOPs, 1e11 bytes → ~1 s.
	got = spec.KernelTime(1000, 1e11)
	if got < time.Second || got > time.Second+time.Millisecond {
		t.Errorf("memory-bound kernel %v", got)
	}
	// Zero-cost kernel pays only launch overhead.
	if got := spec.KernelTime(0, 0); got != time.Microsecond {
		t.Errorf("empty kernel %v", got)
	}
}

func TestComputeBoundClassification(t *testing.T) {
	spec := Spec{PeakFLOPS: 1e12, MemBandwidth: 1e11} // balance = 10 FLOPs/byte
	if spec.MachineBalance() != 10 {
		t.Errorf("machine balance %v", spec.MachineBalance())
	}
	if !spec.ComputeBound(1e9, 1e6) { // intensity 1000
		t.Error("high-intensity kernel should be compute-bound")
	}
	if spec.ComputeBound(1e6, 1e9) { // intensity 0.001
		t.Error("low-intensity kernel should be memory-bound")
	}
}

func TestCatalogueLookup(t *testing.T) {
	for _, name := range []string{"a100-80g", "h100-80g", "a10g-24g", "cpu-host"} {
		spec, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if spec.PeakFLOPS <= 0 || spec.MemBandwidth <= 0 || spec.MemBytes <= 0 {
			t.Errorf("%s has invalid envelope: %+v", name, spec)
		}
	}
	if _, err := ByName("tpu-v9"); err == nil {
		t.Error("unknown device should fail")
	}
}

func TestFits(t *testing.T) {
	if !A100.Fits(70 << 30) {
		t.Error("70 GB fits in an A100-80G")
	}
	if A100.Fits(90 << 30) {
		t.Error("90 GB does not fit")
	}
}

func TestKindString(t *testing.T) {
	if KindGPU.String() != "gpu" || KindCPU.String() != "cpu" || KindTPU.String() != "tpu" {
		t.Error("kind strings wrong")
	}
}

// TestDecodeIsMemoryBound pins the asymmetry the paper's phase-aware
// scheduling exploits: GPT-J prefill is compute-bound while single-token
// decode is memory-bound at realized (batch-1) efficiency. The spec here
// mirrors the calibrated device the evaluation uses (machine balance
// ~10.7 FLOPs/byte; a 72-token prompt has intensity ~72, one decode
// token ~1).
func TestDecodeIsMemoryBound(t *testing.T) {
	spec := Spec{PeakFLOPS: 4.5e12, MemBandwidth: 420e9}
	const params = 6.05e9
	weightBytes := int64(2 * params)
	prefillFLOPs := 2 * params * 72
	decodeFLOPs := 2 * params
	if !spec.ComputeBound(prefillFLOPs, weightBytes) {
		t.Error("72-token prefill should be compute-bound")
	}
	if spec.ComputeBound(decodeFLOPs, weightBytes) {
		t.Error("single-token decode should be memory-bound")
	}
}
