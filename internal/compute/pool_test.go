package compute

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"genie/internal/metrics"
)

// TestParallelForCoversEveryIndexOnce is the scheduling half of the
// determinism contract: every index in [0,n) is visited exactly once,
// for any (n, grain, width) combination.
func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	for _, width := range []int{1, 2, 3, runtime.NumCPU() + 2} {
		p := NewPool(width)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			for _, grain := range []int{0, 1, 3, 64, 5000} {
				hits := make([]int32, n)
				p.ParallelFor(n, grain, func(start, end int) {
					if start < 0 || end > n || start >= end {
						t.Errorf("width=%d n=%d grain=%d: bad range [%d,%d)", width, n, grain, start, end)
						return
					}
					for i := start; i < end; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("width=%d n=%d grain=%d: index %d visited %d times", width, n, grain, i, h)
					}
				}
			}
		}
		p.Stop()
	}
}

// TestParallelForRangesAreFixed verifies chunk boundaries depend only
// on (n, grain), not on the pool width — the property parallel kernels
// lean on for bit-identical results.
func TestParallelForRangesAreFixed(t *testing.T) {
	collect := func(p *Pool, n, grain int) map[[2]int]bool {
		var mu sync.Mutex
		got := map[[2]int]bool{}
		p.ParallelFor(n, grain, func(start, end int) {
			mu.Lock()
			got[[2]int{start, end}] = true
			mu.Unlock()
		})
		return got
	}
	serial := NewPool(1)
	wide := NewPool(8)
	defer serial.Stop()
	defer wide.Stop()
	for _, n := range []int{1, 10, 97, 256} {
		for _, grain := range []int{1, 7, 32, 300} {
			a, b := collect(serial, n, grain), collect(wide, n, grain)
			if len(a) != len(b) {
				t.Fatalf("n=%d grain=%d: %d ranges serial vs %d wide", n, grain, len(a), len(b))
			}
			for r := range a {
				if !b[r] {
					t.Fatalf("n=%d grain=%d: range %v missing at width 8", n, grain, r)
				}
			}
		}
	}
}

// TestNestedParallelForDoesNotDeadlock exercises the batched-matmul
// shape: an outer ParallelFor whose chunks issue inner ParallelFors on
// the same pool. The caller-participates design must make progress even
// with every helper busy.
func TestNestedParallelForDoesNotDeadlock(t *testing.T) {
	p := NewPool(2)
	defer p.Stop()
	var total atomic.Int64
	p.ParallelFor(8, 1, func(start, end int) {
		p.ParallelFor(100, 10, func(s, e int) {
			total.Add(int64(e - s))
		})
	})
	if got := total.Load(); got != 800 {
		t.Fatalf("nested sum = %d, want 800", got)
	}
}

// TestConcurrentCallersShareThePool drives one pool from many
// goroutines at once, as concurrent backend connections do.
func TestConcurrentCallersShareThePool(t *testing.T) {
	p := NewPool(4)
	defer p.Stop()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sum atomic.Int64
			p.ParallelFor(1000, 13, func(start, end int) {
				for i := start; i < end; i++ {
					sum.Add(int64(i))
				}
			})
			if got := sum.Load(); got != 499500 {
				t.Errorf("sum = %d, want 499500", got)
			}
		}()
	}
	wg.Wait()
}

// TestStopIsIdempotentAndLeavesSerialPath verifies Stop twice is safe
// and a stopped pool still executes (inline on the caller).
func TestStopIsIdempotentAndLeavesSerialPath(t *testing.T) {
	snap := metrics.SnapGoroutines()
	p := NewPool(4)
	p.Stop()
	p.Stop()
	ran := 0
	p.ParallelFor(10, 2, func(start, end int) { ran += end - start })
	if ran != 10 {
		t.Fatalf("stopped pool ran %d of 10 indices", ran)
	}
	snap.Check(t)
}

// TestPoolStopReleasesGoroutines is the dynamic complement to
// genie-lint's goleak check on the worker loop.
func TestPoolStopReleasesGoroutines(t *testing.T) {
	snap := metrics.SnapGoroutines()
	for i := 0; i < 3; i++ {
		p := NewPool(6)
		p.ParallelFor(100, 1, func(start, end int) {})
		p.Stop()
	}
	snap.Check(t)
}

// TestWidthOneSpawnsNothing: the forced-serial debug mode must not
// start goroutines at all.
func TestWidthOneSpawnsNothing(t *testing.T) {
	snap := metrics.SnapGoroutines()
	p := NewPool(1)
	ran := false
	p.ParallelFor(5, 100, func(start, end int) { ran = start == 0 && end == 5 })
	if !ran {
		t.Fatal("width-1 pool did not run the single chunk inline")
	}
	p.Stop()
	snap.Check(t)
}

func TestParallelForCtxCancellation(t *testing.T) {
	p := NewPool(2)
	defer p.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := p.ParallelForCtx(ctx, 1000, 1, func(start, end int) {
		if ran.Add(1) == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop chunk claiming (%d chunks ran)", n)
	}
	// A fresh context completes fully and returns nil.
	ran.Store(0)
	if err := p.ParallelForCtx(context.Background(), 50, 5, func(start, end int) { ran.Add(int64(end - start)) }); err != nil {
		t.Fatalf("ParallelForCtx: %v", err)
	}
	if ran.Load() != 50 {
		t.Fatalf("ran %d of 50 indices", ran.Load())
	}
}

func TestDefaultPoolAndConfigure(t *testing.T) {
	if Default() == nil {
		t.Fatal("no default pool")
	}
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
	// Swap in a known pool, then restore the original so other tests
	// (and the process default) are unaffected.
	orig := SetDefault(NewPool(2))
	if Workers() != 2 {
		t.Fatalf("Workers() = %d after SetDefault(2)", Workers())
	}
	sum := 0
	ParallelFor(10, 100, func(start, end int) { sum += end - start })
	if sum != 10 {
		t.Fatalf("package ParallelFor covered %d of 10", sum)
	}
	SetDefault(orig).Stop()
}

func TestNilPoolRunsSerially(t *testing.T) {
	var p *Pool
	if p.Width() != 1 {
		t.Fatalf("nil pool width = %d", p.Width())
	}
	ran := 0
	p.ParallelFor(7, 2, func(start, end int) { ran += end - start })
	if ran != 7 {
		t.Fatalf("nil pool ran %d of 7", ran)
	}
	p.Stop() // must not panic
}

// TestEnvWidth checks GENIE_KERNEL_WORKERS parsing: positive integers
// win, anything else falls back to GOMAXPROCS.
func TestEnvWidth(t *testing.T) {
	cases := []struct {
		val  string
		want int
	}{
		{"1", 1},
		{"7", 7},
		{"0", runtime.GOMAXPROCS(0)},
		{"-3", runtime.GOMAXPROCS(0)},
		{"banana", runtime.GOMAXPROCS(0)},
		{"", runtime.GOMAXPROCS(0)},
	}
	for _, c := range cases {
		t.Setenv(EnvWorkers, c.val)
		if got := envWidth(); got != c.want {
			t.Errorf("envWidth with %s=%q: got %d, want %d", EnvWorkers, c.val, got, c.want)
		}
	}
}
