package runtime

import (
	"context"
	"math/rand"
	goruntime "runtime"
	"testing"
	"time"

	"genie/internal/models"
)

// TestStreamCancelDoesNotLeakGoroutine is a regression test: cancelling
// a Stream mid-decode must terminate its generation goroutine and close
// the token channel — a stream goroutine blocked forever on a channel
// send would pile up one leaked goroutine per cancelled request in a
// long-lived gateway.
func TestStreamCancelDoesNotLeakGoroutine(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r := &LLMRunner{Model: models.NewGPT(rng, models.TinyGPT)}

	before := goroutineCount()
	const streams = 8
	for i := 0; i < streams; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		ch := r.Stream(ctx, ModeLocal, testPrompt, 50)
		// Read a couple of tokens so the stream is genuinely mid-decode,
		// then walk away without draining.
		for j := 0; j < 2; j++ {
			if _, ok := <-ch; !ok {
				t.Fatal("stream ended before cancellation")
			}
		}
		cancel()
		// The channel must close promptly; a blocked producer would keep
		// it open forever.
		waitClosed(t, ch)
	}

	// All stream goroutines must have exited (poll: exit happens after
	// the close we observed).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if goroutineCount() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after %d cancelled streams",
				before, goroutineCount(), streams)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitClosed(t *testing.T, ch <-chan Token) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("stream channel never closed after cancel")
		}
	}
}

func goroutineCount() int {
	goruntime.GC() // settle finalizer goroutines
	return goruntime.NumGoroutine()
}
