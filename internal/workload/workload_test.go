package workload

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLLMTraceDeterministic(t *testing.T) {
	tr := LLMTrace{
		Requests: 10, Vocab: 100,
		PromptMin: 4, PromptMax: 16,
		DecodeMin: 2, DecodeMax: 8,
		MeanInterarrival: time.Millisecond,
	}
	a := tr.Generate(7)
	b := tr.Generate(7)
	if len(a) != 10 {
		t.Fatalf("%d requests", len(a))
	}
	for i := range a {
		if a[i].Decode != b[i].Decode || a[i].Arrival != b[i].Arrival ||
			len(a[i].Prompt) != len(b[i].Prompt) {
			t.Fatal("same seed must reproduce the trace")
		}
	}
	c := tr.Generate(8)
	same := true
	for i := range a {
		if a[i].Arrival != c[i].Arrival {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestLLMTraceBounds(t *testing.T) {
	tr := LLMTrace{Requests: 50, Vocab: 32, PromptMin: 3, PromptMax: 5, DecodeMin: 1, DecodeMax: 1}
	var prev time.Duration
	for _, r := range tr.Generate(1) {
		if len(r.Prompt) < 3 || len(r.Prompt) > 5 {
			t.Fatalf("prompt len %d", len(r.Prompt))
		}
		if r.Decode != 1 {
			t.Fatalf("decode %d", r.Decode)
		}
		for _, tok := range r.Prompt {
			if tok < 0 || tok >= 32 {
				t.Fatalf("token %d out of vocab", tok)
			}
		}
		// Zero interarrival: all at t=0.
		if r.Arrival != 0 {
			t.Fatal("arrivals should be zero without interarrival")
		}
		prev = r.Arrival
	}
	_ = prev
}

func TestArrivalsMonotone(t *testing.T) {
	tr := LLMTrace{Requests: 20, Vocab: 10, PromptMin: 1, PromptMax: 1,
		DecodeMin: 1, DecodeMax: 1, MeanInterarrival: time.Millisecond}
	var prev time.Duration
	for _, r := range tr.Generate(3) {
		if r.Arrival < prev {
			t.Fatal("arrivals must be monotone")
		}
		prev = r.Arrival
	}
}

func TestVisionTrace(t *testing.T) {
	tr := VisionTrace{Requests: 5, Channels: 3, Size: 8}
	reqs := tr.Generate(2)
	if len(reqs) != 5 {
		t.Fatalf("%d requests", len(reqs))
	}
	for _, r := range reqs {
		if len(r.Image) != 3*8*8 {
			t.Fatalf("image len %d", len(r.Image))
		}
		for _, p := range r.Image {
			if p < 0 || p >= 1 {
				t.Fatal("pixels must be in [0,1)")
			}
		}
	}
}

func TestRecTraceZipfSkew(t *testing.T) {
	tr := RecTrace{
		Requests: 500, DenseFeatures: 4,
		TableRows: []int{1000, 1000}, IDsPerTable: 4, ZipfS: 1.5,
	}
	reqs := tr.Generate(11)
	// The hottest 10% of rows should absorb well over 10% of accesses.
	hot := HotSetFraction(reqs, tr.TableRows, 0.10)
	if hot < 0.5 {
		t.Errorf("hot-set fraction %.2f, want skewed ≥0.5", hot)
	}
	// Ids in range.
	for _, r := range reqs {
		for ti, ids := range r.Sparse {
			for _, id := range ids {
				if id < 0 || id >= int64(tr.TableRows[ti]) {
					t.Fatalf("id %d out of range", id)
				}
			}
		}
	}
}

func TestHotSetFractionEdges(t *testing.T) {
	if HotSetFraction(nil, []int{10}, 0.1) != 0 {
		t.Error("empty trace should be 0")
	}
	reqs := []RecRequest{{Sparse: [][]int64{{0}}}}
	if got := HotSetFraction(reqs, []int{10}, 1.0); got != 1 {
		t.Errorf("full fraction should be 1, got %v", got)
	}
}

func TestTracePropertyRequestCount(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		tr := LLMTrace{Requests: int(n % 32), Vocab: 16, PromptMin: 1, PromptMax: 2, DecodeMin: 0, DecodeMax: 1}
		return len(tr.Generate(seed)) == int(n%32)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMixTraceMergedAndOrdered(t *testing.T) {
	m := MixTrace{
		Tenants: []TenantSpec{
			{Name: "a", Class: "llm", Interactive: true, Requests: 5},
			{Name: "b", Class: "vision", Requests: 3},
		},
		MeanInterarrival: time.Millisecond,
	}
	out := m.Generate(4)
	if len(out) != 8 {
		t.Fatalf("%d arrivals", len(out))
	}
	var prev time.Duration
	counts := map[string]int{}
	for _, a := range out {
		if a.Arrival < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = a.Arrival
		counts[a.Tenant]++
	}
	if counts["a"] != 5 || counts["b"] != 3 {
		t.Errorf("per-tenant counts %v", counts)
	}
	// Determinism.
	again := m.Generate(4)
	for i := range out {
		if out[i] != again[i] {
			t.Fatal("mix trace not deterministic")
		}
	}
}

func TestPoissonArrivalsDeterministic(t *testing.T) {
	const n = 200
	a := PoissonArrivals(9, 1000, n)
	b := PoissonArrivals(9, 1000, n)
	if len(a) != n {
		t.Fatalf("%d arrivals, want %d", len(a), n)
	}
	var prev time.Duration
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < prev {
			t.Fatalf("arrivals not monotonic at %d", i)
		}
		prev = a[i]
	}
	// A different seed yields a different trace.
	c := PoissonArrivals(10, 1000, n)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
	// Mean interarrival tracks 1/rate (law of large numbers, loose bound).
	mean := float64(a[n-1]) / n
	want := float64(time.Second) / 1000
	if mean < want/2 || mean > want*2 {
		t.Fatalf("mean interarrival %v, want about %v", time.Duration(mean), time.Duration(want))
	}
	// rate <= 0 degenerates to an all-at-once burst.
	for _, d := range PoissonArrivals(9, 0, 5) {
		if d != 0 {
			t.Fatal("rate 0 should put all arrivals at t=0")
		}
	}
}
