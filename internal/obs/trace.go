package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values are pre-rendered
// strings so exporting never reflects.
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// Span is one timed operation in a trace. Fields are exported for the
// exporters; mutate only through the methods (they are nil-safe, which
// is what makes the disabled path free).
type Span struct {
	// Trace groups every span of one request, across processes: the
	// transport propagates it on the wire, so a backend's spans carry
	// the gateway's trace ID.
	Trace uint64 `json:"trace"`
	// ID identifies this span; Parent is the enclosing span's ID (zero
	// for roots). A remote child's Parent is the caller's wire-sent span
	// ID, which is how cross-process trees stay connected.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent"`
	Name   string `json:"name"`
	// Proc labels the process that produced the span ("gateway",
	// "server"); the Chrome exporter maps it to a pid row.
	Proc  string        `json:"proc"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur"`
	Attrs []Attr        `json:"attrs,omitempty"`

	tracer *Tracer
}

// TracerConfig parameterizes a Tracer.
type TracerConfig struct {
	// Proc labels spans with the producing process.
	Proc string
	// Capacity bounds the ring buffer of completed spans (default 4096).
	Capacity int
	// Clock is injectable for deterministic tests; nil = wall clock.
	Clock Clock
}

// Tracer mints spans and records completed ones into a ring buffer, so
// a trace of recent requests is always available on demand (no
// ahead-of-time "start tracing" step). A nil *Tracer is valid and makes
// every operation a no-op.
type Tracer struct {
	clock Clock
	proc  string
	rec   *Recorder
	ids   atomic.Uint64
	trace atomic.Uint64
}

// NewTracer builds a tracer with a running recorder. Call Stop when
// done; the recorder owns a drain goroutine.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Clock == nil {
		cfg.Clock = wallClock{}
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	t := &Tracer{clock: cfg.Clock, proc: cfg.Proc, rec: NewRecorder(cfg.Capacity)}
	// Seed trace IDs from the clock so IDs from different processes
	// rarely collide; span IDs are process-local and only need to be
	// unique within a tracer.
	t.trace.Store(uint64(cfg.Clock.Now().UnixNano()) << 20)
	return t
}

// Stop terminates the recorder's drain goroutine. Nil-safe, idempotent.
func (t *Tracer) Stop() {
	if t != nil {
		t.rec.Stop()
	}
}

// Snapshot returns the recorded spans, oldest first. Nil-safe.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	return t.rec.Snapshot()
}

// Dropped reports spans discarded because the recorder's ingest queue
// was full. Nil-safe.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.rec.Dropped()
}

// StartRoot opens a new trace: a root span with a fresh trace ID,
// returned along with a derived context carrying it. The gateway calls
// this once per HTTP request; everything below uses StartSpan. A nil
// tracer returns (ctx, nil) untouched.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := t.newSpan(t.trace.Add(1), 0, name)
	return ContextWithSpan(ctx, s), s
}

// StartRemote opens a span whose parent lives in another process: trace
// and parent arrived over the wire. Zero trace means "caller was not
// tracing" and yields no span. A nil tracer returns (ctx, nil).
func (t *Tracer) StartRemote(ctx context.Context, trace, parent uint64, name string) (context.Context, *Span) {
	if t == nil || trace == 0 {
		return ctx, nil
	}
	s := t.newSpan(trace, parent, name)
	return ContextWithSpan(ctx, s), s
}

// RemoteSpan is StartRemote for call sites that have no context to
// thread (the backend's frame loop): it returns just the span, nil when
// the tracer is nil or the caller was not tracing.
func (t *Tracer) RemoteSpan(trace, parent uint64, name string) *Span {
	if t == nil || trace == 0 {
		return nil
	}
	return t.newSpan(trace, parent, name)
}

func (t *Tracer) newSpan(trace, parent uint64, name string) *Span {
	return &Span{
		Trace:  trace,
		ID:     t.ids.Add(1),
		Parent: parent,
		Name:   name,
		Proc:   t.proc,
		Start:  t.clock.Now(),
		tracer: t,
	}
}

// spanKey carries the active span through a context.
type spanKey struct{}

// ContextWithSpan returns ctx carrying s. A nil span returns ctx
// unchanged (no allocation on the disabled path).
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the active span, or nil. A nil ctx is allowed
// (internal call sites that predate context plumbing pass nil rather
// than minting a root context mid-stack).
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's active span. When the
// context carries no span (tracing disabled, or a call path that never
// saw the gateway), it returns (ctx, nil) — one nil check and zero
// allocations, the fast path every hot loop takes.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	t := parent.tracer
	s := t.newSpan(parent.Trace, parent.ID, name)
	return ContextWithSpan(ctx, s), s
}

// End closes the span and hands it to the recorder. Nil-safe;
// double-End records twice (don't).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Dur = s.tracer.clock.Now().Sub(s.Start)
	s.tracer.rec.add(*s)
}

// SetAttr annotates the span. Nil-safe.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: val})
}

// SetAttrInt annotates the span with an integer value. Nil-safe.
func (s *Span) SetAttrInt(key string, val int64) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: itoa(val)})
}

// TraceID returns the span's trace ID, zero for nil — the value the
// transport puts in the wire envelope.
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.Trace
}

// SpanID returns the span's ID, zero for nil.
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.ID
}

// itoa is strconv.FormatInt without the import weight in this file's
// hot path callers (attrs are set on traced paths only).
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
