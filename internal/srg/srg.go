// Package srg implements the Semantically Rich Graph — the paper's core
// abstraction (§3.1) and the "narrow waist" between frontends, schedulers,
// and backends.
//
// An SRG is a declarative DAG, not an executable program: nodes are named
// operations with a common annotation schema (phase, residency, modality,
// cost hints) and edges carry data-movement metadata (tensor descriptors,
// producer-consumer rates, criticality). The graph is pure data — it can be
// serialized, hashed, diffed, shipped to a global scheduler, and replayed
// for lineage-based fault tolerance.
package srg

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within one graph. IDs are dense and assigned in
// insertion order, which is always a valid topological order for graphs
// built by the lazy frontend (an input must exist before an op consumes it).
type NodeID int32

// Invalid is the zero-value "no node" sentinel.
const Invalid NodeID = -1

// Phase tags the execution phase a node belongs to (§3.1 "Phase"). The
// scheduler treats phases as opaque strings; the well-known values below
// are produced by the frontend's pattern recognizers.
type Phase string

// Well-known phases produced by the frontend's recognizers.
const (
	PhaseUnknown    Phase = ""
	PhaseLLMPrefill Phase = "llm_prefill"
	PhaseLLMDecode  Phase = "llm_decode"
	PhaseCVStage    Phase = "cv_stage"
	PhaseSparse     Phase = "sparse_lookup"
	PhaseDense      Phase = "dense_compute"
	PhaseFusion     Phase = "modal_fusion"
)

// Residency describes the intended lifetime of a node's data product
// (§3.1 "Residency"): it is what lets the scheduler distinguish a reusable
// model weight from a one-off activation — the exact knowledge a DMA-level
// disaggregator cannot see.
type Residency uint8

// Residency classes.
const (
	ResidencyUnknown Residency = iota
	// ResidencyPersistentWeight marks immutable model parameters that
	// should be materialized on a remote device exactly once.
	ResidencyPersistentWeight
	// ResidencyEphemeralActivation marks one-shot intermediates that may
	// be discarded (or recomputed) after consumption.
	ResidencyEphemeralActivation
	// ResidencyStatefulKVCache marks state that grows across iterations
	// and must stay co-located with the compute that consumes it.
	ResidencyStatefulKVCache
	// ResidencyExternalInput marks data fed by the application per call.
	ResidencyExternalInput
	// ResidencyExternalOutput marks data the application will read back.
	ResidencyExternalOutput
)

// String implements fmt.Stringer.
func (r Residency) String() string {
	switch r {
	case ResidencyPersistentWeight:
		return "persistent_weight"
	case ResidencyEphemeralActivation:
		return "ephemeral_activation"
	case ResidencyStatefulKVCache:
		return "stateful_kv_cache"
	case ResidencyExternalInput:
		return "external_input"
	case ResidencyExternalOutput:
		return "external_output"
	}
	return "unknown"
}

// Modality tags the data domain (§3.1 "Modality") for placement on
// specialized accelerators.
type Modality string

// Well-known modalities.
const (
	ModalityUnknown Modality = ""
	ModalityText    Modality = "text"
	ModalityVision  Modality = "vision"
	ModalitySparse  Modality = "sparse"
	ModalityDense   Modality = "dense"
)

// CostHints carries profiling- or model-based cost estimates (§3.1).
type CostHints struct {
	// FLOPs is the estimated floating-point work of the node.
	FLOPs float64
	// Bytes is the memory footprint touched by the node (weights +
	// activations), used by the roofline cost model for memory-bound ops.
	Bytes int64
}

// Intensity returns operational intensity in FLOPs/byte (0 if unknown).
func (c CostHints) Intensity() float64 {
	if c.Bytes == 0 {
		return 0
	}
	return c.FLOPs / float64(c.Bytes)
}

// TensorMeta mirrors tensor.Meta without importing it (the SRG is the
// framework-independent waist; it must not depend on any one tensor
// implementation). DType is the tensor package's dtype byte.
type TensorMeta struct {
	DType uint8
	Shape []int
}

// Bytes returns the payload size this descriptor implies on the wire.
func (m TensorMeta) Bytes() int64 {
	n := int64(1)
	for _, d := range m.Shape {
		n *= int64(d)
	}
	return n * int64(dtypeSize(m.DType))
}

func dtypeSize(d uint8) int {
	switch d {
	case 0, 3: // f32, i32
		return 4
	case 1: // f16
		return 2
	case 2: // i64
		return 8
	default: // u8 and anything unknown
		return 1
	}
}

// NumElements returns the element count.
func (m TensorMeta) NumElements() int64 {
	n := int64(1)
	for _, d := range m.Shape {
		n *= int64(d)
	}
	return n
}

// Node is one operation in the graph: anything from a single kernel to a
// large fused subgraph. Nodes are pure data; the backend interprets Op.
type Node struct {
	ID NodeID
	// Op names the operation ("matmul", "softmax", …). Two special ops
	// exist: "param" (a model weight leaf, identified by Ref) and "input"
	// (an external input leaf, identified by Ref).
	Op string
	// Ref names the parameter or input for leaf ops, e.g.
	// "gpt.block3.attn.wq". Empty for compute nodes.
	Ref string
	// Inputs lists producer nodes in argument order.
	Inputs []NodeID
	// Attrs holds op attributes as strings (stride, padding, …) so the
	// graph stays serializable without closures.
	Attrs map[string]string

	// Module is the owning module-hierarchy path captured by the
	// structural-annotation pass (the FX-pass analogue), e.g.
	// "gpt.blocks.3.attention".
	Module string

	// Annotation schema (§3.1).
	Phase     Phase
	Residency Residency
	Modality  Modality
	Cost      CostHints

	// Output describes the node's produced tensor.
	Output TensorMeta
}

// Edge is a data dependency with movement metadata (§3.1). Edges are
// derived from node Inputs; Meta/Rate/Critical may be refined by
// annotation passes.
type Edge struct {
	From, To NodeID
	// ArgIndex is the position of this edge in To's input list.
	ArgIndex int
	// Meta describes the tensor flowing across the edge.
	Meta TensorMeta
	// Rate is the producer-consumer data-volume ratio (1 = pass-through;
	// <1 for sampling/reduction operators), used for bandwidth
	// reservation.
	Rate float64
	// Critical marks edges on the execution critical path so the
	// scheduler can prioritize their transfers.
	Critical bool
}

// Graph is the Semantically Rich Graph.
type Graph struct {
	// Name labels the graph (model + phase), for humans and the global
	// scheduler.
	Name  string
	nodes []*Node
	// critical and rate overrides keyed by edge (to, argIndex).
	edgeCritical map[edgeKey]bool
	edgeRate     map[edgeKey]float64
}

type edgeKey struct {
	to  NodeID
	arg int
}

// New creates an empty graph.
func New(name string) *Graph {
	return &Graph{
		Name:         name,
		edgeCritical: make(map[edgeKey]bool),
		edgeRate:     make(map[edgeKey]float64),
	}
}

// Add appends a node, assigning its ID. The node's Inputs must already be
// in the graph (construction order is therefore topological).
func (g *Graph) Add(n *Node) (NodeID, error) {
	for _, in := range n.Inputs {
		if int(in) < 0 || int(in) >= len(g.nodes) {
			return Invalid, fmt.Errorf("srg: node %q input %d not in graph", n.Op, in)
		}
	}
	n.ID = NodeID(len(g.nodes))
	g.nodes = append(g.nodes, n)
	return n.ID, nil
}

// MustAdd is Add that panics on error, for frontend builders where inputs
// are known-valid by construction.
func (g *Graph) MustAdd(n *Node) NodeID {
	id, err := g.Add(n)
	if err != nil {
		panic(err)
	}
	return id
}

// Len returns the node count.
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(g.nodes) {
		return nil
	}
	return g.nodes[id]
}

// Nodes returns the node slice in ID (topological) order. Callers must not
// reorder it.
func (g *Graph) Nodes() []*Node { return g.nodes }

// SetEdgeCritical marks the (producer→consumer arg) edge as critical-path.
func (g *Graph) SetEdgeCritical(to NodeID, argIndex int, critical bool) {
	g.edgeCritical[edgeKey{to, argIndex}] = critical
}

// SetEdgeRate records a producer-consumer rate for an edge.
func (g *Graph) SetEdgeRate(to NodeID, argIndex int, rate float64) {
	g.edgeRate[edgeKey{to, argIndex}] = rate
}

// Edges materializes the edge list from node inputs plus any per-edge
// annotation overrides, ordered by (To, ArgIndex).
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, n := range g.nodes {
		for i, in := range n.Inputs {
			e := Edge{
				From:     in,
				To:       n.ID,
				ArgIndex: i,
				Meta:     g.nodes[in].Output,
				Rate:     1,
			}
			k := edgeKey{n.ID, i}
			if r, ok := g.edgeRate[k]; ok {
				e.Rate = r
			}
			if c, ok := g.edgeCritical[k]; ok {
				e.Critical = c
			}
			out = append(out, e)
		}
	}
	return out
}

// Consumers returns, for every node, the IDs of nodes that consume it.
func (g *Graph) Consumers() map[NodeID][]NodeID {
	out := make(map[NodeID][]NodeID, len(g.nodes))
	for _, n := range g.nodes {
		for _, in := range n.Inputs {
			out[in] = append(out[in], n.ID)
		}
	}
	return out
}

// Outputs returns the IDs of sink nodes (no consumers) — the graph's
// results.
func (g *Graph) Outputs() []NodeID {
	consumed := make([]bool, len(g.nodes))
	for _, n := range g.nodes {
		for _, in := range n.Inputs {
			consumed[in] = true
		}
	}
	var out []NodeID
	for _, n := range g.nodes {
		if !consumed[n.ID] {
			out = append(out, n.ID)
		}
	}
	return out
}

// Validate checks structural invariants: dense IDs, inputs precede
// consumers (acyclicity by construction), leaf ops carry refs, and compute
// nodes have inputs.
func (g *Graph) Validate() error {
	for i, n := range g.nodes {
		if n.ID != NodeID(i) {
			return fmt.Errorf("srg: node %d has ID %d", i, n.ID)
		}
		for _, in := range n.Inputs {
			if in >= n.ID || in < 0 {
				return fmt.Errorf("srg: node %d consumes %d (not topological)", n.ID, in)
			}
		}
		switch n.Op {
		case "param", "input":
			if n.Ref == "" {
				return fmt.Errorf("srg: leaf node %d (%s) missing ref", n.ID, n.Op)
			}
			if len(n.Inputs) != 0 {
				return fmt.Errorf("srg: leaf node %d (%s %q) has inputs", n.ID, n.Op, n.Ref)
			}
		case "":
			return fmt.Errorf("srg: node %d has empty op", n.ID)
		default:
			if len(n.Inputs) == 0 && n.Op != "const" {
				return fmt.Errorf("srg: compute node %d (%s) has no inputs", n.ID, n.Op)
			}
		}
		if len(n.Output.Shape) > 0 {
			for _, d := range n.Output.Shape {
				if d <= 0 {
					return fmt.Errorf("srg: node %d output dim %d", n.ID, d)
				}
			}
		}
	}
	return nil
}

// TopoOrder returns node IDs in a valid topological order. Because Add
// enforces inputs-before-consumers, insertion order is already
// topological; this returns it explicitly for callers that must not rely
// on that invariant.
func (g *Graph) TopoOrder() []NodeID {
	out := make([]NodeID, len(g.nodes))
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

// AncestorsOf returns the transitive producer closure of the given roots
// (including the roots themselves).
func (g *Graph) AncestorsOf(roots ...NodeID) map[NodeID]bool {
	seen := make(map[NodeID]bool)
	stack := append([]NodeID(nil), roots...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] || g.Node(id) == nil {
			continue
		}
		seen[id] = true
		stack = append(stack, g.Node(id).Inputs...)
	}
	return seen
}

// DescendantsOf returns the transitive consumer closure of the given
// roots (including the roots themselves).
func (g *Graph) DescendantsOf(roots ...NodeID) map[NodeID]bool {
	consumers := g.Consumers()
	seen := make(map[NodeID]bool)
	stack := append([]NodeID(nil), roots...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] || g.Node(id) == nil {
			continue
		}
		seen[id] = true
		stack = append(stack, consumers[id]...)
	}
	return seen
}

// ReplaySet computes the minimal subgraph that must re-execute to
// regenerate the data products in lost, given that everything in alive is
// still materialized (§3.5 lineage): it is the ancestor closure of the
// lost set, cut at alive frontier nodes.
func (g *Graph) ReplaySet(lost map[NodeID]bool, alive map[NodeID]bool) []NodeID {
	need := make(map[NodeID]bool)
	var visit func(id NodeID)
	visit = func(id NodeID) {
		if need[id] {
			return
		}
		// A node that is still materialized and not itself lost cuts the
		// replay: its value can be read instead of recomputed.
		if alive[id] && !lost[id] {
			return
		}
		need[id] = true
		for _, in := range g.Node(id).Inputs {
			visit(in)
		}
	}
	for id := range lost {
		if g.Node(id) != nil {
			visit(id)
		}
	}
	out := make([]NodeID, 0, len(need))
	for id := range need {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ByPhase groups node IDs by phase, preserving topological order within
// each group.
func (g *Graph) ByPhase() map[Phase][]NodeID {
	out := make(map[Phase][]NodeID)
	for _, n := range g.nodes {
		out[n.Phase] = append(out[n.Phase], n.ID)
	}
	return out
}

// ByModule groups node IDs by module path.
func (g *Graph) ByModule() map[string][]NodeID {
	out := make(map[string][]NodeID)
	for _, n := range g.nodes {
		out[n.Module] = append(out[n.Module], n.ID)
	}
	return out
}

// Params returns the IDs of all parameter leaves in ID order.
func (g *Graph) Params() []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Op == "param" {
			out = append(out, n.ID)
		}
	}
	return out
}

// TotalCost sums cost hints across all nodes.
func (g *Graph) TotalCost() CostHints {
	var c CostHints
	for _, n := range g.nodes {
		c.FLOPs += n.Cost.FLOPs
		c.Bytes += n.Cost.Bytes
	}
	return c
}

// CriticalPathEdges marks every edge on some path from an external input
// to a graph output as critical, using longest-path analysis over cost
// hints; the helper is used by the annotation pass.
func (g *Graph) CriticalPathEdges() map[edgeKey]bool {
	if len(g.nodes) == 0 {
		return nil
	}
	// dist[i]: max FLOPs from any source to node i inclusive.
	dist := make([]float64, len(g.nodes))
	pred := make([]NodeID, len(g.nodes))
	predArg := make([]int, len(g.nodes))
	for i, n := range g.nodes {
		dist[i] = n.Cost.FLOPs
		pred[i] = Invalid
		for ai, in := range n.Inputs {
			if d := dist[in] + n.Cost.FLOPs; d >= dist[i] {
				dist[i] = d
				pred[i] = in
				predArg[i] = ai
			}
		}
	}
	// Find the deepest sink, walk back.
	best := NodeID(0)
	for _, id := range g.Outputs() {
		if dist[id] > dist[best] {
			best = id
		}
	}
	out := make(map[edgeKey]bool)
	for cur := best; pred[cur] != Invalid; cur = pred[cur] {
		out[edgeKey{cur, predArg[cur]}] = true
	}
	return out
}

// MarkCriticalPath runs CriticalPathEdges and applies the result to the
// graph's edge annotations.
func (g *Graph) MarkCriticalPath() {
	for k := range g.CriticalPathEdges() {
		g.edgeCritical[k] = true
	}
}
