package metrics

import (
	"strings"
	"testing"
	"time"
)

// fakeReporter captures Check failures instead of failing the test.
type fakeReporter struct {
	failures []string
}

func (f *fakeReporter) Helper() {}
func (f *fakeReporter) Errorf(format string, args ...any) {
	f.failures = append(f.failures, format)
}

func TestGoroutineSnapshotClean(t *testing.T) {
	snap := SnapGoroutines()
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	var rep fakeReporter
	snap.Check(&rep)
	if len(rep.failures) != 0 {
		t.Fatalf("clean teardown reported a leak: %v", rep.failures)
	}
}

func TestGoroutineSnapshotDetectsLeak(t *testing.T) {
	snap := GoroutineSnapshot{base: 0} // any goroutine at all is "leaked"
	var rep fakeReporter
	start := time.Now()
	snap.Check(&rep)
	if len(rep.failures) == 0 {
		t.Fatal("leak not reported")
	}
	if !strings.Contains(rep.failures[0], "goroutine leak") {
		t.Fatalf("unexpected failure message %q", rep.failures[0])
	}
	if time.Since(start) < 2*time.Second {
		t.Fatal("Check gave up before the settle window elapsed")
	}
}
