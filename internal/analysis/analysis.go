// Package analysis is genie-lint's engine: a pure-stdlib static-analysis
// driver (go/parser + go/types + the "source" importer — no external
// dependencies) that loads every package in the module and runs a
// registry of Genie-specific analyzers over the type-checked ASTs.
//
// The analyzers enforce the semantic invariants the paper argues a
// disaggregation layer must preserve and that ordinary Go tooling cannot
// see: context propagation across the remote-execution path (ctxflow),
// no locks held across transport calls (lockscope), cancellable
// goroutines in the serving layers (goleak), no silently dropped errors
// (errcheck), and immutability of materialized tensors outside the
// kernel packages (tensormut).
//
// Deliberate exceptions are encoded in the source as
//
//	//lint:ignore <check> <reason>
//
// on the offending line or the line directly above it; the reason is
// mandatory and a malformed directive is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named lint pass. Check IDs are stable: they appear
// in diagnostics, in -checks filters, and in //lint:ignore directives.
type Analyzer struct {
	// Name is the stable check ID (e.g. "ctxflow").
	Name string
	// Doc is a one-line description shown by genie-lint -list.
	Doc string
	// AppliesTo gates the analyzer by package scope path (see
	// Package.ScopePath). Nil means every package.
	AppliesTo func(scopePath string) bool
	// Run inspects one package and reports diagnostics through the pass.
	Run func(*Pass)
}

// Pass carries one package's type-checked representation to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// ScopePath is the package path used for scope decisions. For real
	// packages it equals the import path; for packages under
	// internal/analysis/testdata/src it is the path the testdata package
	// pretends to live at, so analyzers scope identically in tests.
	ScopePath string
	// Prog is the module-wide interprocedural index (call graph +
	// fixpoint summaries), shared by every analyzer in a run. May be
	// nil, in which case analyzers fall back to their intraprocedural
	// rules.
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding. The JSON field names are the -json output
// schema and are load-bearing for CI annotation; do not rename.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Check)
}

// Analyzers returns the full registry in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		CtxflowAnalyzer,
		LockscopeAnalyzer,
		GoleakAnalyzer,
		ErrcheckAnalyzer,
		TensormutAnalyzer,
		RetrynakedAnalyzer,
		KvscopeAnalyzer,
		PlanverAnalyzer,
		SpanbalanceAnalyzer,
		AtomicmixAnalyzer,
		TimerleakAnalyzer,
	}
}

// RunAnalyzer applies one analyzer to a loaded package and returns its
// raw diagnostics (ignore directives are applied by the driver). prog
// carries the shared interprocedural summaries and may be nil.
func RunAnalyzer(a *Analyzer, pkg *Package, prog *Program) []Diagnostic {
	if a.AppliesTo != nil && !a.AppliesTo(pkg.ScopePath()) {
		return nil
	}
	var diags []Diagnostic
	a.Run(&Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		Info:      pkg.Info,
		ScopePath: pkg.ScopePath(),
		Prog:      prog,
		diags:     &diags,
	})
	return diags
}
