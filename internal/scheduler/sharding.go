package scheduler

import (
	"fmt"
	"strings"

	"genie/internal/cluster"
	"genie/internal/srg"
)

// shardByMemory handles models whose persistent weights exceed a single
// device's memory — the "disproportionate resource requirements" case
// from the paper's introduction. It splits the graph into module-level
// groups (transformer blocks, CNN stages) in topological order and
// greedily bin-packs consecutive groups onto devices by weight footprint,
// so activations stream device-to-device once per boundary while every
// weight lives exactly one place.
//
// Returns nil if the model fits on the home device (no sharding needed).
func shardByMemory(g *srg.Graph, cs *cluster.State, home cluster.AcceleratorID) (map[srg.NodeID]cluster.AcceleratorID, error) {
	homeAcc := cs.Accelerator(home)
	if homeAcc == nil {
		return nil, fmt.Errorf("scheduler: unknown home device %q", home)
	}
	var totalWeights int64
	for _, id := range g.Params() {
		totalWeights += g.Node(id).Output.Bytes()
	}
	budget := homeAcc.Spec.MemBytes - cs.ResidentBytes(home)
	if totalWeights <= budget {
		return nil, nil // fits: no sharding
	}

	// Group compute nodes by their top-level module unit (e.g.
	// "gpt.blocks.3" or "cnn.stages.1"); ungrouped nodes attach to the
	// previous group so boundaries stay clean.
	groups, order := moduleGroups(g)
	if len(order) < 2 {
		return nil, fmt.Errorf("scheduler: weights (%d B) exceed device memory (%d B) and the graph has no module boundaries to shard across", totalWeights, budget)
	}

	// Per-group weight footprint: params consumed by the group's nodes.
	paramOwner := map[srg.NodeID]string{}
	for _, gname := range order {
		for _, id := range groups[gname] {
			for _, in := range g.Node(id).Inputs {
				dep := g.Node(in)
				if dep.Op == "param" {
					if _, claimed := paramOwner[in]; !claimed {
						paramOwner[in] = gname
					}
				}
			}
		}
	}
	weightOf := map[string]int64{}
	for pid, gname := range paramOwner {
		weightOf[gname] += g.Node(pid).Output.Bytes()
	}

	// Greedy packing of consecutive groups onto remote devices.
	remote := cs.Remote()
	place := map[srg.NodeID]cluster.AcceleratorID{}
	devIdx := 0
	var used int64
	devBudget := func(i int) int64 {
		a := remote[i]
		return a.Spec.MemBytes - cs.ResidentBytes(a.ID)
	}
	for _, gname := range order {
		need := weightOf[gname]
		for devIdx < len(remote) && used+need > devBudget(devIdx) && used > 0 {
			devIdx++
			used = 0
		}
		if devIdx >= len(remote) || need > devBudget(devIdx) {
			return nil, fmt.Errorf("scheduler: model does not fit across the pool (group %q needs %d B)", gname, need)
		}
		used += need
		dev := remote[devIdx].ID
		for _, id := range groups[gname] {
			place[id] = dev
		}
	}
	return place, nil
}

// moduleGroups buckets compute nodes by their top-level repeating module
// unit in topological order. The unit is the module path truncated after
// a numeric segment ("gpt.blocks.3.attention.wq" → "gpt.blocks.3"), or
// the first two segments otherwise.
func moduleGroups(g *srg.Graph) (map[string][]srg.NodeID, []string) {
	groups := map[string][]srg.NodeID{}
	var order []string
	seen := map[string]bool{}
	last := ""
	for _, n := range g.Nodes() {
		if n.Op == "param" || n.Op == "input" {
			continue
		}
		name := groupName(n.Module)
		if name == "" {
			if last == "" {
				name = "_head"
			} else {
				name = last
			}
		}
		if !seen[name] {
			seen[name] = true
			order = append(order, name)
		}
		groups[name] = append(groups[name], n.ID)
		last = name
	}
	return groups, order
}

func groupName(module string) string {
	if module == "" {
		return ""
	}
	parts := strings.Split(module, ".")
	for i, p := range parts {
		if isDigits(p) {
			return strings.Join(parts[:i+1], ".")
		}
	}
	if len(parts) > 2 {
		return strings.Join(parts[:2], ".")
	}
	return module
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// Unit is one module-level shard unit: a top-level repeating module
// (transformer block, CNN stage) with the placement-relevant accounting
// the pool layer's cost model consumes — weight footprint, roofline
// inputs, and the boundary activation it ships when the next unit lands
// on a different device.
type Unit struct {
	// Name is the module-group name ("gpt.blocks.3").
	Name string
	// Nodes are the group's compute nodes in topological order.
	Nodes []srg.NodeID
	// WeightBytes is the footprint of params first consumed here.
	WeightBytes int64
	// FLOPs and Bytes aggregate the group's kernel cost (roofline
	// inputs for device.Spec.KernelTime).
	FLOPs float64
	Bytes int64
	// OutBytes is the size of the group's final activation — the
	// cross-shard transfer when a boundary is cut here.
	OutBytes int64
}

// Units decomposes a graph into module-level shard units in topological
// order — the generalization of shardByMemory's grouping that
// pool.ShardPlan builds on.
func Units(g *srg.Graph) []Unit {
	groups, order := moduleGroups(g)
	paramOwner := map[srg.NodeID]string{}
	for _, gname := range order {
		for _, id := range groups[gname] {
			for _, in := range g.Node(id).Inputs {
				if g.Node(in).Op == "param" {
					if _, claimed := paramOwner[in]; !claimed {
						paramOwner[in] = gname
					}
				}
			}
		}
	}
	weightOf := map[string]int64{}
	for pid, gname := range paramOwner {
		weightOf[gname] += g.Node(pid).Output.Bytes()
	}
	units := make([]Unit, 0, len(order))
	for _, gname := range order {
		u := Unit{Name: gname, Nodes: groups[gname], WeightBytes: weightOf[gname]}
		for _, id := range u.Nodes {
			n := g.Node(id)
			u.FLOPs += n.Cost.FLOPs
			u.Bytes += n.Cost.Bytes
		}
		if len(u.Nodes) > 0 {
			u.OutBytes = g.Node(u.Nodes[len(u.Nodes)-1]).Output.Bytes()
		}
		units = append(units, u)
	}
	return units
}

// ShardStat is one device's share of a sharded placement.
type ShardStat struct {
	// Ops counts compute nodes placed on the device.
	Ops int
	// WeightBytes is the weight footprint placed on the device.
	WeightBytes int64
}

// ShardSummary reports a sharded placement: the per-device footprint
// plus the cut edges — compute→compute graph edges whose endpoints land
// on different devices, each a cross-shard activation transfer.
type ShardSummary struct {
	PerDevice map[cluster.AcceleratorID]ShardStat
	// CutEdges counts cross-device compute edges; CutBytes sums the
	// activation bytes they move per evaluation.
	CutEdges int
	CutBytes int64
}

// ShardReport summarizes a sharded placement for logs and tests.
func ShardReport(plan *Plan) ShardSummary {
	sum := ShardSummary{PerDevice: map[cluster.AcceleratorID]ShardStat{}}
	g := plan.Graph
	seenParam := map[srg.NodeID]bool{}
	for _, n := range g.Nodes() {
		if n.Op == "param" || n.Op == "input" {
			continue
		}
		dev := plan.DeviceOf(n.ID)
		st := sum.PerDevice[dev]
		st.Ops++
		for _, in := range n.Inputs {
			dep := g.Node(in)
			switch dep.Op {
			case "param":
				if !seenParam[in] {
					seenParam[in] = true
					st.WeightBytes += dep.Output.Bytes()
				}
			case "input":
			default:
				if plan.DeviceOf(in) != dev {
					sum.CutEdges++
					sum.CutBytes += dep.Output.Bytes()
				}
			}
		}
		sum.PerDevice[dev] = st
	}
	return sum
}
