package kvcache

import (
	"fmt"

	"genie/internal/nn"
	"genie/internal/tensor"
)

// pageSet is one fixed-size KV page: pageTokens rows of K and V for every
// layer, arena-backed ([pageTokens, dim] f32 scratch tensors, zeroed on
// allocation, recycled on release). A pageSet is owned by exactly one
// pageRun; sharing happens at the radix-node level — two sessions whose
// prompts share a prefix read the same resident pages, they never get
// duplicate copies.
type pageSet struct {
	k, v []*tensor.Tensor // per layer, [pageTokens, dim]
	used int              // rows filled, 0..cap
	cap  int
}

func newPageSet(layers, pageTokens, dim int) *pageSet {
	p := &pageSet{cap: pageTokens}
	for i := 0; i < layers; i++ {
		p.k = append(p.k, tensor.NewScratch(tensor.F32, pageTokens, dim))
		p.v = append(p.v, tensor.NewScratch(tensor.F32, pageTokens, dim))
	}
	return p
}

func (p *pageSet) release() {
	for i := range p.k {
		p.k[i].Release()
		p.v[i].Release()
	}
	p.k, p.v = nil, nil
}

// bytes is the full allocation footprint (pages are budgeted whole, not
// by fill level — a half-empty resident page still occupies its arena
// buffer).
func (p *pageSet) bytes() int64 {
	var n int64
	for i := range p.k {
		n += int64(p.k[i].NumBytes() + p.v[i].NumBytes())
	}
	return n
}

// pageRun is an ordered sequence of pages holding a contiguous span of
// token positions. Runs back both radix-node KV state (the shared
// resident plane) and per-session private history (prefix copy + decode
// tail).
type pageRun struct {
	layers, pageTokens, dim int

	pages  []*pageSet
	tokens int
}

func newRun(layers, pageTokens, dim int) *pageRun {
	return &pageRun{layers: layers, pageTokens: pageTokens, dim: dim}
}

func (r *pageRun) bytes() int64 {
	var n int64
	for _, p := range r.pages {
		n += p.bytes()
	}
	return n
}

func (r *pageRun) release() {
	for _, p := range r.pages {
		p.release()
	}
	r.pages, r.tokens = nil, 0
}

// appendRows copies rows [lo, hi) of each layer's fresh K/V tensors into
// the run, growing it page by page. The source tensors stay owned by the
// caller.
func (r *pageRun) appendRows(newK, newV []*tensor.Tensor, lo, hi int) error {
	if len(newK) != r.layers || len(newV) != r.layers {
		return fmt.Errorf("kvcache: %d/%d layer tensors for %d layers", len(newK), len(newV), r.layers)
	}
	for lo < hi {
		p := r.lastFree()
		take := p.cap - p.used
		if take > hi-lo {
			take = hi - lo
		}
		for i := 0; i < r.layers; i++ {
			if err := copyRows(p.k[i], newK[i], lo, lo+take, p.used); err != nil {
				return err
			}
			if err := copyRows(p.v[i], newV[i], lo, lo+take, p.used); err != nil {
				return err
			}
		}
		p.used += take
		r.tokens += take
		lo += take
	}
	return nil
}

func (r *pageRun) lastFree() *pageSet {
	if n := len(r.pages); n > 0 && r.pages[n-1].used < r.pages[n-1].cap {
		return r.pages[n-1]
	}
	p := newPageSet(r.layers, r.pageTokens, r.dim)
	r.pages = append(r.pages, p)
	return p
}

// copyRange copies the run's rows [lo, hi) into per-layer destination
// tensors starting at row `at` — the page-to-contiguous bridge the dense
// attention kernels need.
func (r *pageRun) copyRange(dstK, dstV []*tensor.Tensor, lo, hi, at int) error {
	if lo < 0 || hi > r.tokens || lo > hi {
		return fmt.Errorf("kvcache: run rows [%d,%d) of %d", lo, hi, r.tokens)
	}
	base := 0
	for _, p := range r.pages {
		s, e := max(base, lo), min(base+p.used, hi)
		if s < e {
			dst := at + s - lo
			for i := 0; i < r.layers; i++ {
				if err := copyRows(dstK[i], p.k[i], s-base, e-base, dst); err != nil {
					return err
				}
				if err := copyRows(dstV[i], p.v[i], s-base, e-base, dst); err != nil {
					return err
				}
			}
		}
		base += p.used
	}
	return nil
}

// cloneRange returns a fresh run holding a copy of rows [lo, hi) — the
// copy half of the radix split's copy-on-extend (the suffix child gets
// its own pages; the parent truncates in place).
func (r *pageRun) cloneRange(lo, hi int) (*pageRun, error) {
	ks, vs, release, err := r.gatherRange(lo, hi)
	if err != nil {
		return nil, err
	}
	defer release()
	out := newRun(r.layers, r.pageTokens, r.dim)
	if err := out.appendRows(ks, vs, 0, hi-lo); err != nil {
		out.release()
		return nil, err
	}
	return out, nil
}

// truncate drops rows beyond n in place, releasing pages that become
// fully unused.
func (r *pageRun) truncate(n int) {
	if n >= r.tokens {
		return
	}
	base := 0
	kept := r.pages[:0]
	for _, p := range r.pages {
		switch {
		case base+p.used <= n:
			kept = append(kept, p)
		case base < n:
			p.used = n - base
			kept = append(kept, p)
		default:
			p.release()
		}
		base += p.used
	}
	r.pages = kept
	r.tokens = n
}

// gatherRange materializes rows [lo, hi) as contiguous per-layer scratch
// tensors; release recycles them.
func (r *pageRun) gatherRange(lo, hi int) (ks, vs []*tensor.Tensor, release func(), err error) {
	ks = make([]*tensor.Tensor, r.layers)
	vs = make([]*tensor.Tensor, r.layers)
	for i := 0; i < r.layers; i++ {
		ks[i] = tensor.NewScratch(tensor.F32, hi-lo, r.dim)
		vs[i] = tensor.NewScratch(tensor.F32, hi-lo, r.dim)
	}
	release = func() {
		for i := 0; i < r.layers; i++ {
			ks[i].Release()
			vs[i].Release()
		}
	}
	if err := r.copyRange(ks, vs, lo, hi, 0); err != nil {
		release()
		return nil, nil, nil, err
	}
	return ks, vs, release, nil
}

// gatherCaches materializes the concatenation of several runs as
// contiguous per-layer nn.KVCache views (the shape BuildDecodeStep and
// BuildPrefillExtend bind). release recycles the backing scratch.
func gatherCaches(runs []*pageRun, layers, dim int) (caches []*nn.KVCache, release func(), err error) {
	total := 0
	for _, r := range runs {
		total += r.tokens
	}
	ks := make([]*tensor.Tensor, layers)
	vs := make([]*tensor.Tensor, layers)
	for i := 0; i < layers; i++ {
		ks[i] = tensor.NewScratch(tensor.F32, total, dim)
		vs[i] = tensor.NewScratch(tensor.F32, total, dim)
	}
	release = func() {
		for i := 0; i < layers; i++ {
			ks[i].Release()
			vs[i].Release()
		}
	}
	at := 0
	for _, r := range runs {
		if err := r.copyRange(ks, vs, 0, r.tokens, at); err != nil {
			release()
			return nil, nil, err
		}
		at += r.tokens
	}
	caches = make([]*nn.KVCache, layers)
	for i := 0; i < layers; i++ {
		caches[i] = &nn.KVCache{K: ks[i], V: vs[i]}
	}
	return caches, release, nil
}

// copyRows copies src rows [lo, hi) into dst starting at row `at`.
func copyRows(dst, src *tensor.Tensor, lo, hi, at int) error {
	if lo == hi {
		return nil
	}
	tmp, err := tensor.CopyRowRange(src, lo, hi)
	if err != nil {
		return err
	}
	defer tmp.Release()
	return tensor.CopyRowsAt(dst, tmp, at)
}
