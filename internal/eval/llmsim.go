// Package eval regenerates the paper's evaluation (§4): Table 2
// (end-to-end latency, network traffic, and GPU utilization of the four
// execution modes) and Table 3 (decode-latency scaling), plus the
// ablation experiments DESIGN.md calls out. Experiments run at paper
// scale (GPT-J 6B, A100, 25 Gbps) on the simnet substrate using the same
// call/transfer/kernel structure the real runtime executes at small
// scale — the runtime tests prove the structure, the simulation prices
// it.
package eval

import (
	"time"

	"genie/internal/cluster"
	"genie/internal/device"
	"genie/internal/models"
	"genie/internal/runtime"
	"genie/internal/scheduler"
	"genie/internal/simnet"
)

// A100GPTJUnbatched is the A100-80GB calibrated for single-request GPT-J
// inference: effective (not peak-datasheet) throughput at batch size 1,
// chosen so the Local row lands at the paper's measured 0.21 s prefill /
// 1.53 s 50-token decode. See EXPERIMENTS.md "Calibration".
var A100GPTJUnbatched = device.Spec{
	Name: "a100-80g-gptj-bs1", Kind: device.KindGPU,
	PeakFLOPS:      4.5e12,
	MemBandwidth:   420e9,
	MemBytes:       80 << 30,
	LaunchOverhead: 0,
	CostPerHour:    4.0,
}

// Paper25GbpsLink is the testbed link: CPU-only client to the A100 server
// over 25 Gbps (§4 Setup).
var Paper25GbpsLink = cluster.Link{
	Bandwidth: 25e9 / 8,
	RTT:       200 * time.Microsecond,
}

// LLMSimConfig parameterizes the §4 experiment.
type LLMSimConfig struct {
	Model  models.GPTConfig
	Device device.Spec
	Link   cluster.Link
	RPC    scheduler.RPCProfile

	PromptLen int
	DecodeLen int

	// NaiveReuploadPeriod is how many remote calls share one weight
	// re-upload in Naive mode. 1 is the paper's stated policy ("the
	// entire 12 GB on every remote call"); ≈6.5 reproduces the paper's
	// measured naive-decode magnitudes, which imply upload amortization
	// in their prototype (see EXPERIMENTS.md).
	NaiveReuploadPeriod float64

	// GraphShipBytes approximates the per-call SRG/op-descriptor payload
	// (every RPC stack ships operator metadata; Genie ships the SRG).
	GraphShipBytes int64
}

// PaperConfig is the §4 setup: GPT-J 6B, 72-token prompt, 50-token
// decode, TensorPipe RPC, weight re-upload on every call.
func PaperConfig() LLMSimConfig {
	return LLMSimConfig{
		Model:               models.GPTJ6B,
		Device:              A100GPTJUnbatched,
		Link:                Paper25GbpsLink,
		RPC:                 scheduler.TensorPipeProfile,
		PromptLen:           72,
		DecodeLen:           50,
		NaiveReuploadPeriod: 1,
		GraphShipBytes:      256 << 10,
	}
}

// PhaseRow is one table cell group: a mode's latency, traffic, and GPU
// utilization for one phase.
type PhaseRow struct {
	Mode     runtime.Mode
	Latency  time.Duration
	NetBytes int64
	// GPUBusy is modeled kernel time; Util = GPUBusy/Latency.
	GPUBusy time.Duration
}

// Util returns effective GPU utilization in [0,1].
func (r PhaseRow) Util() float64 {
	if r.Latency == 0 {
		return 0
	}
	return float64(r.GPUBusy) / float64(r.Latency)
}

// Result carries both phases for one mode.
type Result struct {
	Prefill PhaseRow
	Decode  PhaseRow
}

// timeline simulates the sequential client: a GPU resource, a link, and
// an RPC profile. All four modes share it.
type timeline struct {
	sim  *simnet.Sim
	gpu  *simnet.Resource
	cfg  LLMSimConfig
	now  time.Duration
	net  int64
	kern time.Duration
}

func newTimeline(cfg LLMSimConfig) *timeline {
	return &timeline{sim: simnet.New(), gpu: simnet.NewResource("gpu"), cfg: cfg}
}

// call models one synchronous RPC: per-call software overhead, serialize
// + wire for the op descriptors (graph shipment — priced in latency but
// not counted as tensor traffic, matching the paper's RPC tensor
// counters) and the tensor payload up, kernel execution, then serialize +
// wire down.
func (t *timeline) call(bytesUp, bytesDown int64, flops float64, memBytes int64) {
	t.now += t.cfg.RPC.PerCall + t.cfg.Link.RTT
	t.now += t.xferTime(t.cfg.GraphShipBytes + bytesUp)
	if flops > 0 || memBytes > 0 {
		d := t.cfg.Device.KernelTime(flops, memBytes)
		_, end := t.gpu.ReserveAt(t.now, d)
		t.now = end
		t.kern += d
	}
	t.now += t.xferTime(bytesDown)
	t.net += bytesUp + bytesDown
}

// localKernel models on-device work with no network.
func (t *timeline) localKernel(flops float64, memBytes int64) {
	d := t.cfg.Device.KernelTime(flops, memBytes)
	_, end := t.gpu.ReserveAt(t.now, d)
	t.now = end
	t.kern += d
}

func (t *timeline) xferTime(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	d := time.Duration(float64(n) / t.cfg.RPC.SerializeBandwidth * float64(time.Second))
	d += time.Duration(float64(n) / t.cfg.Link.EffectiveBandwidth() * float64(time.Second))
	return d
}

func (t *timeline) snapshot(mode runtime.Mode) PhaseRow {
	return PhaseRow{Mode: mode, Latency: t.now, NetBytes: t.net, GPUBusy: t.kern}
}

func (t *timeline) resetPhase() {
	t.now, t.net, t.kern = 0, 0, 0
	t.gpu.Reset()
}

// Run simulates one mode end to end and returns both phase rows.
// Each phase pays the RPC session setup separately, matching how the
// paper measured phases as separate runs (both remote phase latencies
// carry the same ~110 s Python-RPC constant).
func (cfg LLMSimConfig) Run(mode runtime.Mode) Result {
	if cfg.NaiveReuploadPeriod <= 0 {
		cfg.NaiveReuploadPeriod = 1
	}
	t := newTimeline(cfg)
	m := cfg.Model
	T, N := cfg.PromptLen, cfg.DecodeLen

	prompt := int64(T * 8)
	logitsAll := func(rows int) int64 { return int64(rows) * m.LogitsBytes() }
	lastLogits := m.LogitsBytes()
	actRow := func(rows int) int64 { return int64(rows) * int64(m.Dim) * 4 }

	var res Result
	switch mode {
	case runtime.ModeLocal:
		t.localKernel(m.PrefillFLOPs(T), m.WeightBytes()+m.KVBytes(T))
		res.Prefill = t.snapshot(mode)
		t.resetPhase()
		for s := 0; s < N; s++ {
			t.localKernel(m.DecodeFLOPs(T+s), m.DecodeBytesTouched(T+s))
		}
		res.Decode = t.snapshot(mode)

	case runtime.ModeNaive:
		// Prefill: one call re-uploading all weights; the blind library
		// returns the full logits matrix.
		t.now += cfg.RPC.SetupTime
		t.call(m.WeightBytes()+prompt, logitsAll(T),
			m.PrefillFLOPs(T), m.WeightBytes()+m.KVBytes(T))
		res.Prefill = t.snapshot(mode)
		t.resetPhase()
		// Decode: each step replays the forward over the whole history,
		// re-uploading weights every NaiveReuploadPeriod calls.
		t.now += cfg.RPC.SetupTime
		credit := 0.0
		for s := 0; s < N; s++ {
			hist := T + s + 1
			up := prompt + int64(8*(s+1))
			credit += 1
			if credit >= cfg.NaiveReuploadPeriod {
				up += m.WeightBytes()
				credit -= cfg.NaiveReuploadPeriod
			}
			// No KV cache: recompute attention over the full history.
			t.call(up, logitsAll(hist), m.PrefillFLOPs(hist), m.WeightBytes()+m.KVBytes(hist))
		}
		res.Decode = t.snapshot(mode)

	case runtime.ModeDeltaKV:
		// Weights pre-installed (storage-style provisioning, not counted
		// in phase traffic). Blind per-module dispatch: embed + L layers
		// + head per step; every call's outputs materialize home.
		layers := m.Layers
		kvRow := int64(2 * m.Dim * 4) // one layer's K+V delta rows
		t.now += cfg.RPC.SetupTime
		// Prefill: embed call, per-layer calls (activation [T,dim] up and
		// down + fresh KV rows down), head call with full logits down.
		t.call(prompt, actRow(T), float64(2*T*m.Dim), actRow(T))
		for l := 0; l < layers; l++ {
			flops := m.PrefillFLOPs(T) / float64(layers)
			t.call(actRow(T), actRow(T)+int64(T)*kvRow,
				flops, m.WeightBytes()/int64(layers))
		}
		t.call(actRow(T), logitsAll(T),
			2*float64(m.Dim)*float64(m.Vocab)*float64(T), int64(m.Dim)*int64(m.Vocab)*int64(m.WeightBytesPerParam))
		res.Prefill = t.snapshot(mode)
		t.resetPhase()
		// Decode.
		t.now += cfg.RPC.SetupTime
		for s := 0; s < N; s++ {
			hist := T + s
			t.call(int64(8), actRow(1), float64(2*m.Dim), actRow(1))
			for l := 0; l < layers; l++ {
				flops := m.DecodeFLOPs(hist) / float64(layers)
				t.call(actRow(1), actRow(1)+kvRow,
					flops, (m.WeightBytes()+m.KVBytes(hist))/int64(layers))
			}
			t.call(actRow(1), lastLogits,
				2*float64(m.Dim)*float64(m.Vocab), int64(m.Dim)*int64(m.Vocab)*int64(m.WeightBytesPerParam))
		}
		res.Decode = t.snapshot(mode)

	case runtime.ModeSemAware:
		// One fused call per phase step: prompt/token up, last logits
		// down; weights and caches stay remote by handle.
		t.now += cfg.RPC.SetupTime
		t.call(prompt, lastLogits+8,
			m.PrefillFLOPs(T), m.WeightBytes()+m.KVBytes(T))
		res.Prefill = t.snapshot(mode)
		t.resetPhase()
		t.now += cfg.RPC.SetupTime
		for s := 0; s < N; s++ {
			hist := T + s
			t.call(8, lastLogits+8,
				m.DecodeFLOPs(hist), m.DecodeBytesTouched(hist))
		}
		res.Decode = t.snapshot(mode)
	}
	return res
}

// Table2 regenerates the paper's Table 2: all four modes, both phases.
func Table2(cfg LLMSimConfig) []Result {
	modes := []runtime.Mode{runtime.ModeLocal, runtime.ModeNaive, runtime.ModeDeltaKV, runtime.ModeSemAware}
	out := make([]Result, 0, len(modes))
	for _, m := range modes {
		out = append(out, cfg.Run(m))
	}
	return out
}

// Table3Point is one cell of Table 3.
type Table3Point struct {
	N       int
	Mode    runtime.Mode
	Latency time.Duration
}

// Table3 regenerates decode-latency scaling for ΔKV vs Semantics-Aware at
// N ∈ lengths.
func Table3(cfg LLMSimConfig, lengths []int) []Table3Point {
	var out []Table3Point
	for _, mode := range []runtime.Mode{runtime.ModeDeltaKV, runtime.ModeSemAware} {
		for _, n := range lengths {
			c := cfg
			c.DecodeLen = n
			out = append(out, Table3Point{N: n, Mode: mode, Latency: c.Run(mode).Decode.Latency})
		}
	}
	return out
}
