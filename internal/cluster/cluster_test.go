package cluster

import (
	"testing"
	"time"

	"genie/internal/device"
)

func newPool(t *testing.T) *State {
	t.Helper()
	s := NewState()
	for _, id := range []AcceleratorID{"local0", "gpu0", "gpu1"} {
		a := &Accelerator{ID: id, Spec: device.A100,
			Link: Link{Bandwidth: 25e9 / 8, RTT: time.Millisecond}}
		if id == "local0" {
			a.Local = true
		}
		if err := s.AddAccelerator(a); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestAddAndLookup(t *testing.T) {
	s := newPool(t)
	if s.Accelerator("gpu0") == nil {
		t.Error("gpu0 missing")
	}
	if s.Accelerator("nope") != nil {
		t.Error("unknown id should be nil")
	}
	if err := s.AddAccelerator(&Accelerator{ID: "gpu0"}); err == nil {
		t.Error("duplicate id should fail")
	}
	if got := len(s.Accelerators()); got != 3 {
		t.Errorf("%d accelerators", got)
	}
	if got := len(s.Remote()); got != 2 {
		t.Errorf("%d remote accelerators, want 2 (local excluded)", got)
	}
}

func TestResidencyLifecycle(t *testing.T) {
	s := newPool(t)
	s.SetResident("w0", "gpu0", 100)
	s.SetResident("w1", "gpu0", 50)
	if acc, ok := s.ResidentOn("w0"); !ok || acc != "gpu0" {
		t.Errorf("w0 on %q %v", acc, ok)
	}
	if got := s.ResidentBytes("gpu0"); got != 150 {
		t.Errorf("resident bytes %d", got)
	}
	s.EvictResident("w0", 100)
	if _, ok := s.ResidentOn("w0"); ok {
		t.Error("w0 should be evicted")
	}
	if got := s.ResidentBytes("gpu0"); got != 50 {
		t.Errorf("resident bytes after evict %d", got)
	}
	// Eviction is idempotent and never goes negative.
	s.EvictResident("w0", 100)
	s.EvictResident("w1", 500)
	if got := s.ResidentBytes("gpu0"); got != 0 {
		t.Errorf("resident bytes %d, want 0", got)
	}
}

func TestEvictAccelerator(t *testing.T) {
	s := newPool(t)
	s.SetResident("a", "gpu0", 10)
	s.SetResident("b", "gpu0", 10)
	s.SetResident("c", "gpu1", 10)
	keys := s.EvictAccelerator("gpu0")
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("evicted %v", keys)
	}
	if _, ok := s.ResidentOn("c"); !ok {
		t.Error("gpu1 objects must survive")
	}
	if s.ResidentBytes("gpu0") != 0 {
		t.Error("gpu0 bytes should be zero")
	}
}

func TestQueueDepthAndLeastLoaded(t *testing.T) {
	s := newPool(t)
	if s.LeastLoaded() == nil {
		t.Fatal("least loaded should exist")
	}
	s.IncQueue("gpu0")
	s.IncQueue("gpu0")
	s.IncQueue("gpu1")
	if got := s.LeastLoaded().ID; got != "gpu1" {
		t.Errorf("least loaded %q", got)
	}
	s.DecQueue("gpu0")
	s.DecQueue("gpu0")
	s.DecQueue("gpu0") // extra dec clamps at zero
	if d := s.QueueDepth("gpu0"); d != 0 {
		t.Errorf("queue depth %d", d)
	}
	if got := s.LeastLoaded().ID; got != "gpu0" {
		t.Errorf("least loaded %q after drain", got)
	}
}

func TestLeastLoadedEmptyPool(t *testing.T) {
	s := NewState()
	if s.LeastLoaded() != nil {
		t.Error("empty pool should have no least-loaded device")
	}
}

func TestLinkTransferTime(t *testing.T) {
	l := Link{Bandwidth: 1e9, RTT: 2 * time.Millisecond}
	// 1 GB at 1 GB/s = 1 s + half RTT.
	got := l.TransferTime(1e9)
	if got < time.Second || got > time.Second+10*time.Millisecond {
		t.Errorf("transfer time %v", got)
	}
	if l.TransferTime(0) != 0 {
		t.Error("zero bytes should be free")
	}
}

func TestLinkCongestion(t *testing.T) {
	l := Link{Bandwidth: 1000}
	if l.EffectiveBandwidth() != 1000 {
		t.Error("no congestion should pass through")
	}
	l.Congestion = 0.75
	if l.EffectiveBandwidth() != 250 {
		t.Errorf("effective bw %v", l.EffectiveBandwidth())
	}
	l.Congestion = 5 // clamp
	if l.EffectiveBandwidth() <= 0 {
		t.Error("over-congestion must not zero the link")
	}
	l.Congestion = -1
	if l.EffectiveBandwidth() != 1000 {
		t.Error("negative congestion clamps to zero")
	}
}

func TestSetCongestion(t *testing.T) {
	s := newPool(t)
	if err := s.SetCongestion("gpu0", 0.5); err != nil {
		t.Fatal(err)
	}
	if got := s.Accelerator("gpu0").Link.Congestion; got != 0.5 {
		t.Errorf("congestion %v", got)
	}
	if err := s.SetCongestion("nope", 0.5); err == nil {
		t.Error("unknown accelerator should fail")
	}
}

// TestRemoveReleasesMembershipState: removing a member must release its
// residency map and queue-depth entries (the membership-aware eviction
// fix) so placement never consults stale state and the same ID can
// re-join.
func TestRemoveReleasesMembershipState(t *testing.T) {
	s := newPool(t)
	s.SetResident("gpt.blocks.0.wq", "gpu0", 1024)
	s.SetResident("gpt.blocks.1.wq", "gpu0", 2048)
	s.SetResident("gpt.blocks.2.wq", "gpu1", 512)
	s.IncQueue("gpu0")
	s.IncQueue("gpu0")
	s.MarkFailed("gpu0")

	keys := s.Remove("gpu0")
	if len(keys) != 2 || keys[0] != "gpt.blocks.0.wq" || keys[1] != "gpt.blocks.1.wq" {
		t.Fatalf("evicted keys %v", keys)
	}
	if s.Accelerator("gpu0") != nil {
		t.Error("removed accelerator still registered")
	}
	if got := s.ResidentBytes("gpu0"); got != 0 {
		t.Errorf("stale resident bytes %d after removal", got)
	}
	if got := s.QueueDepth("gpu0"); got != 0 {
		t.Errorf("stale queue depth %d after removal", got)
	}
	if _, ok := s.ResidentOn("gpt.blocks.0.wq"); ok {
		t.Error("removed member's objects still resident")
	}
	if on, _ := s.ResidentOn("gpt.blocks.2.wq"); on != "gpu1" {
		t.Error("other members' residency disturbed by removal")
	}

	// The ID re-joins cleanly: no duplicate error, no failure mark.
	if err := s.AddAccelerator(&Accelerator{ID: "gpu0", Spec: device.A100}); err != nil {
		t.Fatalf("re-join after remove: %v", err)
	}
	if !s.Healthy("gpu0") {
		t.Error("re-joined member inherits stale failure mark")
	}
}

// TestEvictAcceleratorResetsAccounting: eviction (failure handling, not
// removal) must also reset byte and queue accounting so Replacement and
// LeastLoaded are not skewed by a dead member's ghost load.
func TestEvictAcceleratorResetsAccounting(t *testing.T) {
	s := newPool(t)
	s.SetResident("w0", "gpu0", 4096)
	s.IncQueue("gpu0")
	s.EvictAccelerator("gpu0")
	if got := s.ResidentBytes("gpu0"); got != 0 {
		t.Errorf("evicted accelerator keeps %d resident bytes", got)
	}
	if got := s.QueueDepth("gpu0"); got != 0 {
		t.Errorf("evicted accelerator keeps queue depth %d", got)
	}
	if s.Accelerator("gpu0") == nil {
		t.Error("eviction must not deregister the accelerator")
	}
}
