package ops

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"genie/internal/quant"
)

// Quantized-kernel parity (DESIGN.md §11). The f32 suite demands
// bit-exactness against a serial reference; quantized kernels get a
// two-part contract instead:
//
//  1. Determinism: results are bit-identical at every worker count —
//     trivially true for int8 (integer accumulation is associative) and
//     preserved for f16 by replaying the f32 kernel's add order on a
//     widened panel.
//  2. Accuracy: max abs error vs the f32 reference stays inside the
//     analytic bound of the symmetric quantization scheme. For int8,
//     element (i,j) may drift by at most
//     Σ_kk [ (as_i/2)·|b_kkj| + (bs_j/2)·|a_ikk| + as_i·bs_j/4 ]
//     (activation error × weight, weight error × activation, cross
//     term), since each rounding is ≤ scale/2.

// quantBoundQ8 computes that per-element bound for a [m,k] @ b [k,n]
// with activation scales asc (per row) and weight scales bsc (per
// output column of the product).
func quantBoundQ8(a, b []float32, asc, bsc []float64, m, k, n int) []float64 {
	bound := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for kk := 0; kk < k; kk++ {
				av := math.Abs(float64(a[i*k+kk]))
				bv := math.Abs(float64(b[kk*n+j]))
				s += asc[i]/2*bv + bsc[j]/2*av + asc[i]*bsc[j]/4
			}
			bound[i*n+j] = s
		}
	}
	return bound
}

// rowScales reproduces the dynamic activation quantization scales the
// kernel derives (maxabs/127 per row).
func rowScales(a []float32, m, k int) []float64 {
	s := make([]float64, m)
	for i := 0; i < m; i++ {
		var mx float64
		for kk := 0; kk < k; kk++ {
			if v := math.Abs(float64(a[i*k+kk])); v > mx {
				mx = v
			}
		}
		if mx == 0 {
			mx = 127 // scale 1
		}
		s[i] = mx / 127
	}
	return s
}

func expectWithin(t *testing.T, ctx string, got []float32, want, bound []float64) {
	t.Helper()
	for i := range got {
		diff := math.Abs(float64(got[i]) - want[i])
		// 1% slack + epsilon absorbs the f32 rounding of the dequantizing
		// store, which the integer-arithmetic bound does not model.
		if diff > bound[i]*1.01+1e-5 {
			t.Fatalf("%s: element %d = %g, want %g ± %g (off by %g)",
				ctx, i, got[i], want[i], bound[i], diff)
		}
	}
}

func f64s(a []float32) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = float64(v)
	}
	return out
}

func TestMatMulQ8Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, sh := range [][3]int{{1, 64, 256}, {1, 70, 130}, {7, 64, 128}, {33, 96, 300}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		qb, err := quant.QuantizeLinear(b, 1)
		if err != nil {
			t.Fatal(err)
		}

		ref := f64s(refMatMul(a.F32(), b.F32(), m, k, n))
		asc := rowScales(a.F32(), m, k)
		bsc := make([]float64, n)
		for j, s := range qb.Scales() {
			bsc[j] = float64(s)
		}
		bound := quantBoundQ8(a.F32(), b.F32(), asc, bsc, m, k, n)

		var first []float32
		for _, w := range workerCounts() {
			atWidth(t, w, func() {
				got, err := MatMul(a, qb)
				if err != nil {
					t.Fatal(err)
				}
				ctx := fmt.Sprintf("matmul-q8 %dx%dx%d w=%d", m, k, n, w)
				if first == nil {
					first = append([]float32(nil), got.F32()...)
					expectWithin(t, ctx, got.F32(), ref, bound)
				} else {
					expectBits(t, ctx, got.F32(), first)
				}
				got.Release()
			})
		}
	}
}

// TestQ8PackedBandIdentity pins the packed SWAR decode path to the
// byte-wise band kernel bit-for-bit: both compute the exact same int32
// dots and the same dequantizing store, so routing a shape through
// either kernel must be invisible. Shapes cover the 4-wide lane
// grouping's edges (n%4 tails, n<4, k below the unroll).
func TestQ8PackedBandIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, sh := range [][3]int{{1, 64, 256}, {1, 70, 130}, {1, 33, 3}, {3, 127, 257}, {8, 16, 4}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		qb, err := quant.QuantizeLinear(b, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Packed path (m <= swarMaxM routes through it).
		got, err := MatMul(a, qb)
		if err != nil {
			t.Fatal(err)
		}
		// Band kernel on the same quantized inputs.
		qa := make([]int8, m*k)
		asc := make([]float32, m)
		for i := 0; i < m; i++ {
			asc[i] = quant.QuantizeRow(a.F32()[i*k:(i+1)*k], qa[i*k:(i+1)*k])
		}
		want := make([]float32, m*n)
		matmulQ8Band(qa, qb.I8(), asc, qb.Scales(), want, 0, m, 0, n, k, n)
		expectBits(t, fmt.Sprintf("q8 packed-vs-band %dx%dx%d", m, k, n), got.F32(), want)
		got.Release()
	}
}

func TestMatMulTQ8Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, sh := range [][3]int{{1, 64, 96}, {5, 70, 3}, {96, 48, 96}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, n, k)
		qb, err := quant.QuantizeLinear(b, 0)
		if err != nil {
			t.Fatal(err)
		}

		ref := f64s(refMatMulT(a.F32(), b.F32(), m, k, n))
		asc := rowScales(a.F32(), m, k)
		bsc := make([]float64, n)
		for j, s := range qb.Scales() {
			bsc[j] = float64(s)
		}
		// Reuse the bound by viewing bᵀ as the [k,n] operand.
		bt := make([]float32, k*n)
		for j := 0; j < n; j++ {
			for kk := 0; kk < k; kk++ {
				bt[kk*n+j] = b.F32()[j*k+kk]
			}
		}
		bound := quantBoundQ8(a.F32(), bt, asc, bsc, m, k, n)

		var first []float32
		for _, w := range workerCounts() {
			atWidth(t, w, func() {
				got, err := MatMulT(a, qb)
				if err != nil {
					t.Fatal(err)
				}
				ctx := fmt.Sprintf("matmulT-q8 %dx%dx%d w=%d", m, k, n, w)
				if first == nil {
					first = append([]float32(nil), got.F32()...)
					expectWithin(t, ctx, got.F32(), ref, bound)
				} else {
					expectBits(t, ctx, got.F32(), first)
				}
				got.Release()
			})
		}
	}
}

func TestMatMulF16Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, sh := range [][3]int{{1, 64, 256}, {3, 70, 130}, {17, 96, 80}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		hb := b.ToF16()
		deq := hb.ToF32()
		// The f16 kernel promises bit-exactness vs the f32 reference run
		// on the widened weights — precision is lost at storage time, not
		// in the kernel.
		want := refMatMul(a.F32(), deq.F32(), m, k, n)
		for _, w := range workerCounts() {
			atWidth(t, w, func() {
				got, err := MatMul(a, hb)
				if err != nil {
					t.Fatal(err)
				}
				expectBits(t, fmt.Sprintf("matmul-f16 %dx%dx%d w=%d", m, k, n, w), got.F32(), want)
				got.Release()
			})
		}
	}
}

func TestMatMulTF16Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, sh := range [][3]int{{1, 64, 96}, {5, 70, 3}, {96, 48, 96}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, n, k)
		hb := b.ToF16()
		deq := hb.ToF32()
		want := refMatMulT(a.F32(), deq.F32(), m, k, n)
		for _, w := range workerCounts() {
			atWidth(t, w, func() {
				got, err := MatMulT(a, hb)
				if err != nil {
					t.Fatal(err)
				}
				expectBits(t, fmt.Sprintf("matmulT-f16 %dx%dx%d w=%d", m, k, n, w), got.F32(), want)
				got.Release()
			})
		}
	}
}

// TestDTypeToleranceParity is the per-dtype tolerance table: one row per
// weight dtype, stating and checking the max-abs-error contract vs the
// f32 reference on a decode-shaped product. It documents what "parity"
// means for each tier rather than leaving it implicit in kernel code.
func TestDTypeToleranceParity(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	const m, k, n = 4, 96, 160
	a := randTensor(rng, m, k)
	b := randTensor(rng, k, n)
	ref := f64s(refMatMul(a.F32(), b.F32(), m, k, n))

	maxErr := func(got []float32) float64 {
		var mx float64
		for i := range got {
			if d := math.Abs(float64(got[i]) - ref[i]); d > mx {
				mx = d
			}
		}
		return mx
	}

	rows := []struct {
		dtype string
		run   func() []float32
		tol   func() float64
	}{
		{
			dtype: "f32",
			run: func() []float32 {
				out, err := MatMul(a, b)
				if err != nil {
					t.Fatal(err)
				}
				defer out.Release()
				return append([]float32(nil), out.F32()...)
			},
			tol: func() float64 { return 0 }, // bit-exact by the main suite
		},
		{
			dtype: "f16",
			run: func() []float32 {
				out, err := MatMul(a, b.ToF16())
				if err != nil {
					t.Fatal(err)
				}
				defer out.Release()
				return append([]float32(nil), out.F32()...)
			},
			// Each of k products may be off by half a ULP of the f16
			// weight (2^-11 relative); bound with the max |a·b| summand.
			tol: func() float64 {
				var mx float64
				for i := 0; i < m*k; i++ {
					for j := 0; j < n; j++ {
						kk := i % k
						p := math.Abs(float64(a.F32()[i]) * float64(b.F32()[kk*n+j]))
						if p > mx {
							mx = p
						}
					}
				}
				return float64(k) * mx * math.Pow(2, -11) * 1.5
			},
		},
		{
			dtype: "i8",
			run: func() []float32 {
				qb, err := quant.QuantizeLinear(b, 1)
				if err != nil {
					t.Fatal(err)
				}
				out, err := MatMul(a, qb)
				if err != nil {
					t.Fatal(err)
				}
				defer out.Release()
				return append([]float32(nil), out.F32()...)
			},
			tol: func() float64 {
				qb, _ := quant.QuantizeLinear(b, 1)
				asc := rowScales(a.F32(), m, k)
				bsc := make([]float64, n)
				for j, s := range qb.Scales() {
					bsc[j] = float64(s)
				}
				bound := quantBoundQ8(a.F32(), b.F32(), asc, bsc, m, k, n)
				var mx float64
				for _, v := range bound {
					if v > mx {
						mx = v
					}
				}
				return mx*1.01 + 1e-5
			},
		},
	}

	for _, row := range rows {
		got := row.run()
		tol := row.tol()
		err := maxErr(got)
		if err > tol {
			t.Errorf("dtype %s: max abs error %g exceeds tolerance %g", row.dtype, err, tol)
		}
		t.Logf("dtype %-4s max-abs-error %.3g (tolerance %.3g)", row.dtype, err, tol)
	}
}
