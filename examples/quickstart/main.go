// Command quickstart shows Genie's core loop in ~60 lines: capture a
// computation into a Semantically Rich Graph with lazy tensors, let the
// frontend annotate it, schedule it onto a pool, and execute it against
// an in-process disaggregated backend.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"genie"
	"genie/internal/srg"
	"genie/internal/transport"
)

func main() {
	// 1. Capture: ordinary-looking tensor code, nothing executes yet.
	b := genie.NewBuilder("quickstart")
	x := b.Input("x", genie.FromF32(genie.Shape{2, 4},
		[]float32{1, 2, 3, 4, 5, 6, 7, 8}))
	w := b.Param("w", genie.FromF32(genie.Shape{4, 3},
		[]float32{.1, .2, .3, .4, .5, .6, .7, .8, .9, 1, 1.1, 1.2}))
	y := b.Softmax(b.MatMul(x, w))
	b.MarkOutput(y)
	fmt.Printf("captured %d-node SRG (no execution yet)\n", b.Graph().Len())

	// 2. Annotate: the frontend infers semantics from structure.
	rep := genie.Annotate(b.Graph())
	fmt.Printf("annotation report: %v phases inferred\n", rep.Phases)

	// 3. Schedule: declarative graph -> placement plan.
	pool := genie.NewCluster()
	if err := pool.AddAccelerator(&genie.Accelerator{
		ID: "gpu0", Spec: genie.A100,
		Link: genie.Link{Bandwidth: 25e9 / 8, RTT: 500 * time.Microsecond},
	}); err != nil {
		log.Fatal(err)
	}
	plan, err := genie.Schedule(b.Graph(), pool, genie.SemanticsAware{},
		genie.NewCostModel(genie.RDMAProfile))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: policy=%s estimate=%v keep-remote=%d\n",
		plan.Policy, plan.Estimate, len(plan.KeepRemote))

	// 4. Execute remotely: real server, real socket, real bytes.
	srv := genie.NewServer(genie.A100)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go func() { _ = genie.Serve(srv, l) }()

	client, err := genie.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	xt, _ := b.InputData("x")
	wt, _ := b.ParamData("w")
	ok, err := client.Exec(&transport.Exec{
		Graph: b.Graph(),
		Binds: []transport.Binding{
			{Ref: "x", Inline: xt},
			{Ref: "w", Inline: wt},
		},
		Want: []srg.NodeID{y.ID()},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote result %v: %.3v\n",
		ok.Results[y.ID()].Shape(), ok.Results[y.ID()].F32())
	sent, recv, calls := client.Conn().Counters().Snapshot()
	fmt.Printf("wire traffic: %d bytes sent, %d received, %d calls\n", sent, recv, calls)
}
