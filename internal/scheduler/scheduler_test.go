package scheduler

import (
	"math/rand"
	"testing"
	"time"

	"genie/internal/cluster"
	"genie/internal/device"
	"genie/internal/frontend"
	"genie/internal/models"
	"genie/internal/nn"
	"genie/internal/srg"
	"genie/internal/tensor"
)

func pool(t *testing.T, n int) *cluster.State {
	t.Helper()
	cs := cluster.NewState()
	link := cluster.Link{Bandwidth: 25e9 / 8, RTT: 200 * time.Microsecond}
	for i := 0; i < n; i++ {
		if err := cs.AddAccelerator(&cluster.Accelerator{
			ID:   cluster.AcceleratorID(string(rune('a' + i))),
			Spec: device.A100,
			Link: link,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return cs
}

func decodeGraph(t *testing.T) *srg.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	m := models.NewGPT(rng, models.TinyGPT)
	caches := make([]*nn.KVCache, m.Cfg.Layers)
	for i := range caches {
		caches[i] = &nn.KVCache{
			K: tensor.New(tensor.F32, 4, m.Cfg.Dim),
			V: tensor.New(tensor.F32, 4, m.Cfg.Dim),
		}
	}
	b, _ := m.BuildDecodeStep(1, 4, 4, caches)
	frontend.Annotate(b.Graph())
	return b.Graph()
}

func cnnGraph(t *testing.T) *srg.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	m := models.NewCNN(rng, models.TinyCNN)
	b, _ := m.BuildForward(tensor.New(tensor.F32, 3, 32, 32))
	frontend.Annotate(b.Graph())
	return b.Graph()
}

func TestRoundRobinSpreadsNodes(t *testing.T) {
	cs := pool(t, 3)
	g := decodeGraph(t)
	plan, err := Schedule(g, cs, RoundRobin{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	used := map[cluster.AcceleratorID]bool{}
	for _, n := range g.Nodes() {
		if n.Op != "param" && n.Op != "input" {
			used[plan.Place[n.ID]] = true
		}
	}
	if len(used) != 3 {
		t.Errorf("round robin used %d devices, want 3", len(used))
	}
	if plan.Policy != "round_robin" {
		t.Errorf("policy %q", plan.Policy)
	}
}

func TestLeastLoadedPicksIdleDevice(t *testing.T) {
	cs := pool(t, 2)
	cs.IncQueue("a")
	cs.IncQueue("a")
	g := decodeGraph(t)
	plan, err := Schedule(g, cs, LeastLoaded{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes() {
		if plan.Place[n.ID] != "b" {
			t.Fatalf("node %d on %q, want b", n.ID, plan.Place[n.ID])
		}
	}
}

func TestDataAwareFollowsResidency(t *testing.T) {
	cs := pool(t, 2)
	g := decodeGraph(t)
	// Park every weight on device b.
	for _, id := range g.Params() {
		cs.SetResident(g.Node(id).Ref, "b", g.Node(id).Output.Bytes())
	}
	plan, err := Schedule(g, cs, DataAware{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	onB := 0
	total := 0
	for _, n := range g.Nodes() {
		if n.Op == "param" || n.Op == "input" {
			continue
		}
		total++
		if plan.Place[n.ID] == "b" {
			onB++
		}
	}
	if onB*2 < total {
		t.Errorf("data-aware put only %d/%d compute nodes with the weights", onB, total)
	}
}

func TestSemanticsAwareColocatesWithCache(t *testing.T) {
	cs := pool(t, 3)
	g := decodeGraph(t)
	// The KV cache lives on device c.
	cs.SetResident(models.CacheRef(0, "k"), "c", 1024)
	plan, err := Schedule(g, cs, SemanticsAware{}, NewCostModel(TensorPipeProfile))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes() {
		if n.Op == "param" || n.Op == "input" {
			continue
		}
		if plan.Place[n.ID] != "c" {
			t.Fatalf("decode node %d on %q, want co-located with cache on c", n.ID, plan.Place[n.ID])
		}
	}
	// Cache appends kept remote under their refs; weights kept too.
	keptCaches := 0
	for id, key := range plan.KeepRemote {
		n := g.Node(id)
		if n.Residency == srg.ResidencyStatefulKVCache && n.Op == "concat" {
			keptCaches++
			if key == "" {
				t.Error("cache kept under empty key")
			}
		}
	}
	if keptCaches != 2*models.TinyGPT.Layers {
		t.Errorf("kept %d cache products, want %d", keptCaches, 2*models.TinyGPT.Layers)
	}
	if plan.Estimate <= 0 {
		t.Error("cost model estimate missing")
	}
}

func TestSemanticsAwareColocationDisabled(t *testing.T) {
	cs := pool(t, 3)
	g := decodeGraph(t)
	cs.SetResident(models.CacheRef(0, "k"), "c", 1024)
	plan, err := Schedule(g, cs, SemanticsAware{DisableColocation: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Without co-location the policy defaults to the first device.
	for _, n := range g.Nodes() {
		if n.Op == "param" || n.Op == "input" {
			continue
		}
		if plan.Place[n.ID] == "c" {
			t.Fatal("ablated policy should not follow the cache")
		}
	}
}

func TestSemanticsAwarePipelinesCNN(t *testing.T) {
	cs := pool(t, 2)
	g := cnnGraph(t)
	plan, err := Schedule(g, cs, SemanticsAware{}, NewCostModel(RDMAProfile))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.PipelineStages) < 2 {
		t.Fatalf("expected pipeline stages, got %d", len(plan.PipelineStages))
	}
	// Stages must land on alternating devices.
	devs := map[cluster.AcceleratorID]bool{}
	for _, stage := range plan.PipelineStages {
		devs[plan.Place[stage[0]]] = true
	}
	if len(devs) != 2 {
		t.Errorf("pipeline used %d devices, want 2", len(devs))
	}
	if err := plan.Validate(cs); err != nil {
		t.Fatal(err)
	}
}

func TestSemanticsAwarePipelineSingleDeviceNoSplit(t *testing.T) {
	cs := pool(t, 1)
	g := cnnGraph(t)
	plan, err := Schedule(g, cs, SemanticsAware{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PipelineStages != nil {
		t.Error("single-device pool must not pipeline")
	}
}

func TestDynamicRecomputationUnderCongestion(t *testing.T) {
	cs := pool(t, 2)
	g := cnnGraph(t)
	// Congest device b's link heavily.
	if err := cs.SetCongestion("b", 0.9); err != nil {
		t.Fatal(err)
	}
	plan, err := Schedule(g, cs, SemanticsAware{RecomputeThresholdFLOPs: 1e9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.CrossDeviceEdges()) == 0 {
		t.Skip("no cross-device edges to recompute")
	}
	if len(plan.Recompute) == 0 {
		t.Error("congested cheap producers should be recomputed")
	}
	// Ablated: no recomputation.
	plan2, err := Schedule(g, cs, SemanticsAware{DisableRecompute: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan2.Recompute) != 0 {
		t.Error("ablated policy must not recompute")
	}
}

func TestScheduleRejectsEmptyPool(t *testing.T) {
	cs := cluster.NewState()
	g := decodeGraph(t)
	for _, p := range []Policy{RoundRobin{}, LeastLoaded{}, DataAware{}, SemanticsAware{}} {
		if _, err := Schedule(g, cs, p, nil); err == nil {
			t.Errorf("%s should fail on an empty pool", p.Name())
		}
	}
}

func TestScheduleRejectsInvalidGraph(t *testing.T) {
	cs := pool(t, 1)
	g := srg.New("bad")
	g.MustAdd(&srg.Node{Op: "input", Ref: "x"})
	g.Nodes()[0].Op = "" // corrupt
	if _, err := Schedule(g, cs, RoundRobin{}, nil); err == nil {
		t.Error("invalid graph should be rejected")
	}
}

func TestPlanValidateCatchesUnplacedAndBadKeys(t *testing.T) {
	cs := pool(t, 1)
	g := decodeGraph(t)
	plan := &Plan{Graph: g, Place: map[srg.NodeID]cluster.AcceleratorID{}}
	if err := plan.Validate(cs); err == nil {
		t.Error("unplaced nodes should fail validation")
	}
	full, err := Schedule(g, cs, LeastLoaded{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	full.KeepRemote = map[srg.NodeID]string{0: ""}
	if err := full.Validate(cs); err == nil {
		t.Error("empty keep key should fail validation")
	}
}

func TestCostModelTransferVsCompute(t *testing.T) {
	cs := pool(t, 2)
	g := cnnGraph(t)
	model := NewCostModel(TensorPipeProfile)

	single, err := Schedule(g, cs, LeastLoaded{}, model)
	if err != nil {
		t.Fatal(err)
	}
	spread, err := Schedule(g, cs, RoundRobin{}, model)
	if err != nil {
		t.Fatal(err)
	}
	// Under a heavy per-call transport, spreading every op round-robin
	// must cost more than keeping the graph on one device.
	if spread.Estimate <= single.Estimate {
		t.Errorf("round-robin estimate %v should exceed single-device %v",
			spread.Estimate, single.Estimate)
	}
	if model.TransferBytes(single) != 0 {
		t.Error("single-device plan should imply zero transfers")
	}
	if model.TransferBytes(spread) == 0 {
		t.Error("round-robin plan should imply transfers")
	}
}

func TestCostModelRecomputeRemovesTransfer(t *testing.T) {
	cs := pool(t, 2)
	g := cnnGraph(t)
	model := NewCostModel(TensorPipeProfile)
	plan, err := Schedule(g, cs, RoundRobin{}, model)
	if err != nil {
		t.Fatal(err)
	}
	before := model.TransferBytes(plan)
	// Recompute every producer of a cross-device edge.
	plan.Recompute = map[srg.NodeID]bool{}
	for _, e := range plan.CrossDeviceEdges() {
		if n := g.Node(e.From); n.Op != "param" && n.Op != "input" {
			plan.Recompute[e.From] = true
		}
	}
	after := model.TransferBytes(plan)
	if after >= before {
		t.Errorf("recompute should reduce transfer bytes: %d -> %d", before, after)
	}
}

func TestRPCProfilesCallTime(t *testing.T) {
	link := cluster.Link{Bandwidth: 25e9 / 8, RTT: time.Millisecond}
	slow := TensorPipeProfile.CallTime(link, 1<<20)
	fast := RDMAProfile.CallTime(link, 1<<20)
	if fast >= slow {
		t.Errorf("RDMA call (%v) should beat TensorPipe (%v)", fast, slow)
	}
	// Zero-byte calls still pay per-call + RTT.
	if got := RDMAProfile.CallTime(link, 0); got < time.Millisecond {
		t.Errorf("zero-byte call %v should include RTT", got)
	}
}

func TestPipelineEstimateBeatsSequentialForCNN(t *testing.T) {
	cs := pool(t, 2)
	g := cnnGraph(t)
	model := NewCostModel(RDMAProfile)
	pipelined, err := Schedule(g, cs, SemanticsAware{}, model)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Schedule(g, cs, SemanticsAware{DisablePipeline: true}, model)
	if err != nil {
		t.Fatal(err)
	}
	// Per-request latency: pipelining adds inter-stage hops, so the
	// sequential plan may well be cheaper for one tiny image — the
	// pipeline's win is throughput under streams (bench A2 measures it).
	// Here we assert the model prices the added hops rather than hiding
	// them.
	if pipelined.Estimate <= seq.Estimate {
		t.Errorf("pipelined latency estimate %v should price inter-stage hops (seq %v)",
			pipelined.Estimate, seq.Estimate)
	}
	if model.TransferBytes(pipelined) <= model.TransferBytes(seq) {
		t.Error("pipelined plan should imply more transfer bytes than single-device")
	}
}

func TestShardByMemorySplitsOversizedModel(t *testing.T) {
	// TinyGPT weights ~100 KB; give each device 60 KB so a prefill graph
	// cannot fit on one device and must shard across blocks.
	cs := cluster.NewState()
	link := cluster.Link{Bandwidth: 25e9 / 8, RTT: time.Millisecond}
	spec := device.A100
	spec.MemBytes = 60 << 10
	for _, id := range []cluster.AcceleratorID{"a", "b", "c"} {
		if err := cs.AddAccelerator(&cluster.Accelerator{ID: id, Spec: spec, Link: link}); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(14))
	m := models.NewGPT(rng, models.TinyGPT)
	b, _ := m.BuildPrefill([]int64{1, 2, 3})
	frontend.Annotate(b.Graph())

	plan, err := Schedule(b.Graph(), cs, SemanticsAware{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	report := ShardReport(plan)
	if len(report.PerDevice) < 2 {
		t.Fatalf("oversized model placed on %d device(s): %v", len(report.PerDevice), report.PerDevice)
	}
	if report.CutEdges == 0 || report.CutBytes == 0 {
		t.Fatalf("sharded plan reports no cut edges: %+v", report)
	}
	// Sharding follows topology: a block's nodes all share one device.
	byGroup := map[string]map[cluster.AcceleratorID]bool{}
	for _, n := range plan.Graph.Nodes() {
		if n.Op == "param" || n.Op == "input" || n.Module == "" {
			continue
		}
		gname := groupName(n.Module)
		if byGroup[gname] == nil {
			byGroup[gname] = map[cluster.AcceleratorID]bool{}
		}
		byGroup[gname][plan.DeviceOf(n.ID)] = true
	}
	for gname, devs := range byGroup {
		if len(devs) != 1 {
			t.Errorf("group %q split across %d devices", gname, len(devs))
		}
	}
}

func TestShardByMemoryFitsStaysHome(t *testing.T) {
	cs := pool(t, 3) // full-size A100s: TinyGPT easily fits
	rng := rand.New(rand.NewSource(15))
	m := models.NewGPT(rng, models.TinyGPT)
	b, _ := m.BuildPrefill([]int64{1, 2})
	frontend.Annotate(b.Graph())
	plan, err := Schedule(b.Graph(), cs, SemanticsAware{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ShardReport(plan).PerDevice) != 1 {
		t.Error("fitting model should not shard")
	}
}

func TestShardByMemoryPoolTooSmallErrors(t *testing.T) {
	cs := cluster.NewState()
	spec := device.A100
	spec.MemBytes = 4 << 10 // 4 KB per device: nothing fits
	for _, id := range []cluster.AcceleratorID{"a", "b"} {
		if err := cs.AddAccelerator(&cluster.Accelerator{ID: id, Spec: spec,
			Link: cluster.Link{Bandwidth: 1e9}}); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(16))
	m := models.NewGPT(rng, models.TinyGPT)
	b, _ := m.BuildPrefill([]int64{1})
	frontend.Annotate(b.Graph())
	if _, err := Schedule(b.Graph(), cs, SemanticsAware{}, nil); err == nil {
		t.Error("undersized pool should fail loudly, not thrash")
	}
}
