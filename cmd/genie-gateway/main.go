// Command genie-gateway fronts one or more genie-server backends with
// the online serving engine: a stdlib HTTP API with per-tenant fair
// queuing, bounded admission (429 on overload), and continuous decode
// batching per backend.
//
// Endpoints:
//
//	POST /v1/generate  {"tenant","prompt":[ids],"max_tokens","slo","timeout_ms","stream"}
//	GET  /healthz      200 while serving; 503 while draining or while any
//	                   lane is quarantined (JSON lists the sick lanes)
//	GET  /stats        queue depth, batch occupancy, TTFT/latency percentiles,
//	                   per-lane health scores (with -health)
//	GET  /metrics      Prometheus text: serve/transport counters, gauges, histograms
//	GET  /debug/trace  Chrome trace JSON of the span ring buffer (chrome://tracing)
//
// Every backend must be a running genie-server; the gateway builds the
// model weights from -seed (all replicas must share it so any lane
// yields identical tokens) and installs them on each backend at start.
//
// Usage:
//
//	genie-gateway -addr :8080 -backends 127.0.0.1:7009,127.0.0.1:7010 \
//	  -mode semantics_aware -seed 1 -queue 64 -batch 8
//
// With -pool-backends the listed servers instead form one sharded
// backend pool: the model splits across members (pipeline/tensor/memory
// placement via -shard-strategy), members may join or leave at runtime,
// and /stats exposes the live shard plan under "pool".
//
//	genie-gateway -addr :8080 -pool-backends 127.0.0.1:7009,127.0.0.1:7010 \
//	  -shard-strategy auto -pool-mem-bytes 70000
//
// -prefix-cache-bytes enables the radix prefix KV cache (local and
// semantics_aware modes): requests sharing a prompt prefix prefill only
// their suffix, and /stats exposes hit ratio and residency under
// "cache". -split-prefill disaggregates the two inference phases across
// exactly two -backends — the first runs prefill, the second holds
// decode state — shipping only the ΔKV suffix between them.
//
//	genie-gateway -addr :8080 -backends 127.0.0.1:7009,127.0.0.1:7010 \
//	  -split-prefill -prefix-cache-bytes 67108864 -wire-compress
//
// Fail-slow tolerance (-health, on by default) scores every lane's
// latency and error rate against the best member: Suspect lanes yield
// to healthy ones, Quarantined lanes drain through failover with no
// state loss, and -quarantine-* tune the thresholds. With
// -split-prefill, -hedge-prefill races a second prefill lane once the
// first runs past the adaptive health deadline (the first n-1
// -backends become prefill lanes, the last holds decode):
//
//	genie-gateway -addr :8080 \
//	  -backends 127.0.0.1:7009,127.0.0.1:7010,127.0.0.1:7011 \
//	  -split-prefill -hedge-prefill -hedge-floor 25ms
//
// SIGINT/SIGTERM drains gracefully: admission closes, queued and
// running requests finish, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"genie/internal/cluster"
	"genie/internal/device"
	"genie/internal/health"
	"genie/internal/kvcache"
	"genie/internal/models"
	"genie/internal/obs"
	"genie/internal/pool"
	"genie/internal/quant"
	"genie/internal/runtime"
	"genie/internal/serve"
	"genie/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP address to serve on")
	backends := flag.String("backends", "127.0.0.1:7009", "comma-separated genie-server addresses")
	modeName := flag.String("mode", runtime.ModeSemAware.String(),
		"disaggregation mode (local, naive, delta_kv, semantics_aware)")
	seed := flag.Int64("seed", 1, "model weight seed (must match across replicas)")
	queue := flag.Int("queue", 64, "admission queue bound (requests beyond it get 429)")
	batch := flag.Int("batch", 8, "max requests per continuous decode batch, per backend")
	maxTokens := flag.Int("max-tokens", 32, "default generation cap per request")
	deadline := flag.Duration("deadline", 0, "default per-request deadline (0 = none)")
	retryBudget := flag.Int("retry-budget", 1,
		"re-queues per request after backend loss before shedding 503 (0 = fail fast)")
	retryAfter := flag.Duration("retry-after", time.Second,
		"Retry-After hint sent with 503 responses")
	opTimeout := flag.Duration("op-timeout", 2*time.Second,
		"per-RPC deadline on prefill/decode ops (0 = none; bounds hung-peer stalls)")
	breakerThreshold := flag.Int("breaker-threshold", 3,
		"consecutive backend failures that open a lane's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", time.Second,
		"open-breaker cooldown before a half-open probe")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound")
	kernelWorkers := flag.Int("kernel-workers", 0,
		"CPU kernel worker-pool width (0 = GOMAXPROCS or GENIE_KERNEL_WORKERS, 1 = serial)")
	trace := flag.Bool("trace", true, "record request-scoped spans (GET /debug/trace)")
	traceCap := flag.Int("trace-cap", 4096, "span ring-buffer capacity (oldest spans overwritten)")
	traceDump := flag.String("trace-dump", "", "write Chrome trace JSON to this file at shutdown")
	poolBackends := flag.String("pool-backends", "",
		"comma-separated genie-server addresses forming ONE sharded backend pool "+
			"(the model splits across them; mutually exclusive with -backends lanes)")
	shardStrategy := flag.String("shard-strategy", "auto",
		"pool shard placement: memory, tensor, pipeline, or auto (cheapest feasible)")
	poolRebalance := flag.Bool("pool-rebalance-on-join", false,
		"re-place shards when a member joins (only while no session KV is live); "+
			"default keeps newcomers as hot spares")
	poolMemBytes := flag.Int64("pool-mem-bytes", 0,
		"per-member memory capacity the shard planner assumes, in bytes "+
			"(0 = the modeled device default; small values force multi-member sharding)")
	quantMode := flag.String("quant", "off",
		"weight tier installed on backends: off (f32), int8 (per-column symmetric), f16")
	prefixCacheBytes := flag.Int64("prefix-cache-bytes", 0,
		"radix prefix KV cache budget in bytes (0 = off); requests sharing a "+
			"prompt prefix prefill only their suffix")
	kvPageTokens := flag.Int("kv-page-tokens", kvcache.DefaultPageTokens,
		"tokens per KV page in the prefix cache")
	splitPrefill := flag.Bool("split-prefill", false,
		"disaggregate prefill/decode across exactly two -backends: the first "+
			"runs prefill, the second holds decode KV (semantics_aware mode only)")
	wireCompress := flag.Bool("wire-compress", false,
		"negotiate wire features (compression, dedup, delta uploads) with each backend; "+
			"backends that refuse stay on the legacy protocol")
	healthOn := flag.Bool("health", true,
		"graded fail-slow health scoring on every lane: Suspect lanes demote, "+
			"Quarantined lanes drain through failover; /stats gains a health block "+
			"and /healthz turns 503 while any lane is quarantined")
	quarantineFactor := flag.Float64("quarantine-factor", 8,
		"latency ratio vs the best lane's EWMA that quarantines an endpoint "+
			"(suspect engages at 3)")
	quarantineErrRate := flag.Float64("quarantine-err-rate", 0.5,
		"error-rate EWMA that quarantines an endpoint (suspect engages at 0.1)")
	quarantineCooldown := flag.Duration("quarantine-cooldown", 2*time.Second,
		"quarantine dwell before an endpoint is trialed for reinstatement")
	hedgePrefill := flag.Bool("hedge-prefill", false,
		"with -split-prefill: race a second prefill lane once the first exceeds "+
			"the adaptive health deadline (needs >= 3 -backends: prefill lanes..., decode)")
	hedgeFloor := flag.Duration("hedge-floor", 25*time.Millisecond,
		"minimum wait before a hedged prefill launches its backup")
	flag.Parse()

	mode, err := runtime.ParseMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	qm, err := quant.ParseMode(*quantMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// One process-wide metrics registry (served at /metrics) and, unless
	// -trace=false, one tracer whose spans cover the whole stack: HTTP
	// handler, queue wait, prefill/decode phases, transport RPCs.
	reg := obs.NewRegistry()
	var tracer *obs.Tracer
	if *trace {
		tracer = obs.NewTracer(obs.TracerConfig{Proc: "gateway", Capacity: *traceCap})
		defer tracer.Stop()
	}
	tel := transport.NewTelemetry(reg)

	// One health set scores every endpoint the gateway touches — serving
	// lanes, pool members, and split prefill lanes — so the latency
	// baseline ("what does healthy look like here") is shared and the
	// /stats health block covers the whole stack.
	var hs *health.Set
	if *healthOn {
		hs = health.NewSet(health.Config{
			QuarantineFactor:  *quarantineFactor,
			QuarantineErrRate: *quarantineErrRate,
			Cooldown:          *quarantineCooldown,
			Metrics:           reg,
		})
	}
	if *hedgePrefill && !*splitPrefill {
		log.Fatal("genie-gateway: -hedge-prefill needs -split-prefill (it races prefill lanes)")
	}

	// With -wire-compress the gateway offers the full wire feature set to
	// each backend right after dialing; whatever subset the server grants
	// is installed on that connection (legacy servers grant nothing).
	negotiate := func(c *transport.Client, baddr string) {
		if !*wireCompress {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		granted, err := c.Negotiate(ctx, transport.FeatAll)
		if err != nil {
			log.Fatalf("genie-gateway: negotiate with %s: %v", baddr, err)
		}
		log.Printf("genie-gateway: %s granted wire features %#x", baddr, granted)
	}

	// Two backend topologies: the default gives each -backends address its
	// own lane with a full model replica; -pool-backends instead shards ONE
	// model across every listed address behind a single pool.Manager lane,
	// so models larger than any one member's memory still serve.
	var lanes []serve.Backend
	var poolStats, cacheStats func() any

	// The prefix cache and the split runner both need ONE shared model
	// instance (the cache keys KV state against it); plain lanes build
	// their own replica from the same seed.
	var cacheMgr *kvcache.Manager
	if *prefixCacheBytes > 0 {
		if *poolBackends != "" {
			log.Fatal("genie-gateway: -prefix-cache-bytes does not compose with -pool-backends yet")
		}
		if mode != runtime.ModeLocal && mode != runtime.ModeSemAware {
			log.Fatalf("genie-gateway: -prefix-cache-bytes needs mode local or semantics_aware, not %s "+
				"(the cache speaks the scoped-KV protocol)", mode)
		}
		var err error
		cacheMgr, err = kvcache.NewManager(kvcache.Config{
			Model:       models.NewGPT(rand.New(rand.NewSource(*seed)), models.TinyGPT),
			BudgetBytes: *prefixCacheBytes,
			PageTokens:  *kvPageTokens,
			Metrics:     reg,
		})
		if err != nil {
			log.Fatalf("genie-gateway: %v", err)
		}
		cacheStats = func() any { return cacheMgr.Snapshot() }
	}

	if *poolBackends != "" {
		if mode == runtime.ModeLocal {
			log.Fatal("genie-gateway: -pool-backends needs a remote mode (the pool shards across backends)")
		}
		strat, err := pool.ParseStrategy(*shardStrategy)
		if err != nil {
			log.Fatalf("genie-gateway: %v", err)
		}
		mgr, err := pool.NewManager(pool.Config{
			Model:           models.NewGPT(rand.New(rand.NewSource(*seed)), models.TinyGPT),
			Strategy:        strat,
			Metrics:         reg,
			RebalanceOnJoin: *poolRebalance,
			Health:          hs,
		})
		if err != nil {
			log.Fatalf("genie-gateway: %v", err)
		}
		// The paper's 25 Gbps network path; member capacity defaults to the
		// modeled A100 unless -pool-mem-bytes narrows it.
		link := cluster.Link{Bandwidth: 3.125e9}
		spec := device.A100
		if *poolMemBytes > 0 {
			spec.MemBytes = *poolMemBytes
		}
		for _, baddr := range strings.Split(*poolBackends, ",") {
			baddr = strings.TrimSpace(baddr)
			if baddr == "" {
				continue
			}
			conn, err := transport.Dial(baddr, nil, nil)
			if err != nil {
				log.Fatalf("genie-gateway: pool member %s: %v", baddr, err)
			}
			defer conn.Close()
			conn.SetTelemetry(tel)
			member := transport.NewClient(conn)
			negotiate(member, baddr)
			if err := mgr.Join(baddr, member, spec, link); err != nil {
				log.Fatalf("genie-gateway: pool member %s: %v", baddr, err)
			}
		}
		plan := mgr.Plan()
		if plan == nil {
			log.Fatal("genie-gateway: pool has no feasible shard plan (add members or raise -pool-mem-bytes)")
		}
		log.Printf("genie-gateway: pool sharded %s across %d member(s), %d cut edge(s)",
			strat, len(plan.Members()), plan.CutEdges)
		lanes = append(lanes, serve.Backend{Name: "pool", Runner: mgr.Runner()})
		poolStats = func() any { return mgr.Status() }
	} else if *splitPrefill {
		if mode != runtime.ModeSemAware {
			log.Fatalf("genie-gateway: -split-prefill needs mode semantics_aware, not %s "+
				"(decode holds resident scoped KV)", mode)
		}
		var eps []runtime.Endpoint
		var ctrs []*transport.Counters
		var names []string
		for _, baddr := range strings.Split(*backends, ",") {
			baddr = strings.TrimSpace(baddr)
			if baddr == "" {
				continue
			}
			conn, err := transport.Dial(baddr, nil, nil)
			if err != nil {
				log.Fatalf("genie-gateway: backend %s: %v", baddr, err)
			}
			defer conn.Close()
			conn.SetTelemetry(tel)
			lc := transport.NewClient(conn)
			negotiate(lc, baddr)
			eps = append(eps, lc)
			ctrs = append(ctrs, conn.Counters())
			names = append(names, baddr)
		}
		if *hedgePrefill && len(eps) < 3 {
			log.Fatalf("genie-gateway: -hedge-prefill needs at least three -backends "+
				"(two or more prefill lanes, then the decode lane), got %d", len(eps))
		}
		if !*hedgePrefill && len(eps) != 2 {
			log.Fatalf("genie-gateway: -split-prefill needs exactly two -backends "+
				"(prefill lane, decode lane), got %d", len(eps))
		}
		model := models.NewGPT(rand.New(rand.NewSource(*seed)), models.TinyGPT)
		if cacheMgr != nil {
			model = cacheMgr.Model()
		}
		scfg := kvcache.SplitConfig{
			Model:          model,
			Decode:         eps[len(eps)-1],
			DecodeCounters: ctrs[len(ctrs)-1],
			Cache:          cacheMgr,
			Metrics:        reg,
			Health:         hs,
		}
		if *hedgePrefill {
			for i := 0; i < len(eps)-1; i++ {
				scfg.Lanes = append(scfg.Lanes, kvcache.PrefillLane{Name: names[i], EP: eps[i]})
			}
			scfg.HedgePrefill = true
			scfg.HedgeFloor = *hedgeFloor
		} else {
			scfg.Prefill = eps[0]
		}
		sp, err := kvcache.NewSplit(scfg)
		if err != nil {
			log.Fatalf("genie-gateway: %v", err)
		}
		if err := sp.InstallWeights(); err != nil {
			log.Fatalf("genie-gateway: install weights: %v", err)
		}
		decName := names[len(names)-1]
		if *hedgePrefill {
			log.Printf("genie-gateway: hedged prefill across %s, decode on %s",
				strings.Join(names[:len(names)-1], ","), decName)
		} else {
			log.Printf("genie-gateway: split prefill on %s, decode on %s", names[0], decName)
		}
		lanes = append(lanes, serve.Backend{Name: "split:" + decName, Runner: sp.Runner()})
	} else {
		for _, baddr := range strings.Split(*backends, ",") {
			baddr = strings.TrimSpace(baddr)
			if baddr == "" {
				continue
			}
			var r *runtime.LLMRunner
			switch {
			case cacheMgr != nil && mode == runtime.ModeLocal:
				r = cacheMgr.Runner()
			case mode == runtime.ModeLocal:
				r = &runtime.LLMRunner{
					Model: models.NewGPT(rand.New(rand.NewSource(*seed)), models.TinyGPT),
				}
			default:
				conn, err := transport.Dial(baddr, nil, nil)
				if err != nil {
					log.Fatalf("genie-gateway: backend %s: %v", baddr, err)
				}
				defer conn.Close()
				conn.SetTelemetry(tel)
				lc := transport.NewClient(conn)
				negotiate(lc, baddr)
				if cacheMgr != nil {
					r = cacheMgr.RunnerOn(lc, conn.Counters())
				} else {
					r = &runtime.LLMRunner{
						Model:    models.NewGPT(rand.New(rand.NewSource(*seed)), models.TinyGPT),
						EP:       lc,
						Counters: conn.Counters(),
					}
				}
			}
			lanes = append(lanes, serve.Backend{Name: baddr, Runner: r})
		}
	}
	if len(lanes) == 0 {
		log.Fatal("genie-gateway: no backends")
	}

	// The engine reads RetryBudget 0 as "use the default"; the flag's 0
	// means fail fast, which the config spells as negative.
	budget := *retryBudget
	if budget <= 0 {
		budget = -1
	}

	engine, err := serve.NewEngine(serve.Config{
		Mode:             mode,
		MaxQueue:         *queue,
		MaxBatch:         *batch,
		DefaultMaxTokens: *maxTokens,
		DefaultDeadline:  *deadline,
		KernelWorkers:    *kernelWorkers,
		RetryBudget:      budget,
		RetryAfter:       *retryAfter,
		OpTimeout:        *opTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Tracer:           tracer,
		Metrics:          reg,
		PoolStats:        poolStats,
		CacheStats:       cacheStats,
		Quant:            qm,
		Health:           hs,
	}, lanes)
	if err != nil {
		log.Fatalf("genie-gateway: %v", err)
	}
	engine.Start()

	srv := &http.Server{Addr: *addr, Handler: serve.NewHandler(engine)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("genie-gateway: serving %s on %s (%d backend(s), queue %d, batch %d)",
		mode, *addr, len(lanes), *queue, *batch)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("genie-gateway: %v", err)
	case sig := <-sigc:
		log.Printf("genie-gateway: %s, draining (bound %v)", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := engine.Drain(ctx); err != nil {
		log.Printf("genie-gateway: drain incomplete: %v", err)
	}
	engine.Stop()
	_ = srv.Shutdown(ctx)
	if *traceDump != "" && tracer != nil {
		if err := dumpTrace(*traceDump, tracer); err != nil {
			log.Printf("genie-gateway: trace dump: %v", err)
		} else {
			log.Printf("genie-gateway: wrote trace to %s (open in chrome://tracing)", *traceDump)
		}
	}
	log.Printf("genie-gateway: drained, exiting")
}

// dumpTrace writes the span ring buffer as Chrome trace JSON.
func dumpTrace(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, tracer.Snapshot()); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
