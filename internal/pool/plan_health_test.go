package pool

import (
	"testing"
	"time"

	"genie/internal/device"
	"genie/internal/health"
)

// TestPlanPrefersHealthyMembers: with both members able to hold the
// whole model, first-fit packing must land every layer on the healthy
// one when the other is quarantined — regardless of offered order.
func TestPlanPrefersHealthyMembers(t *testing.T) {
	m := testGPT()
	cands := []Candidate{
		{Name: "sick", Spec: device.A100, Link: testLink, Quarantined: true},
		{Name: "ok", Spec: device.A100, Link: testLink, HealthScore: 0.9},
	}
	p, err := BuildPlan(m, cands, StrategyMemory, 1)
	if err != nil {
		t.Fatal(err)
	}
	if members := p.Members(); len(members) != 1 || members[0] != "ok" {
		t.Fatalf("placement uses %v, want all layers on the healthy member", members)
	}

	// A quarantined-only pool still plans: better a sick member than none.
	only := []Candidate{{Name: "sick", Spec: device.A100, Link: testLink, Quarantined: true}}
	if _, err := BuildPlan(m, only, StrategyMemory, 1); err != nil {
		t.Fatalf("quarantined-only pool must stay feasible: %v", err)
	}
}

// TestPlanEstimateFoldsHealth: the cost model must charge a degraded
// member 1/score on its kernel time, with the divisor floored so
// estimates stay finite.
func TestPlanEstimateFoldsHealth(t *testing.T) {
	m := testGPT()
	one := func(score float64, quarantined bool) time.Duration {
		p, err := BuildPlan(m, []Candidate{{
			Name: "a", Spec: device.A100, Link: testLink,
			HealthScore: score, Quarantined: quarantined,
		}}, StrategyMemory, 1)
		if err != nil {
			t.Fatal(err)
		}
		return p.Estimate
	}
	healthy := one(0, false)
	halved := one(0.5, false)
	floored := one(0.000001, false)
	quarantined := one(0, true)
	if halved <= healthy {
		t.Errorf("score 0.5 estimate %v not above healthy %v", halved, healthy)
	}
	// Kernel time doubles; link terms don't, so the ratio is in (1, 2].
	if halved > 2*healthy {
		t.Errorf("score 0.5 estimate %v more than doubled healthy %v", halved, healthy)
	}
	if want := one(minPlanScore, false); floored != want {
		t.Errorf("near-zero score estimate %v, want floored-at-%v value %v", floored, minPlanScore, want)
	}
	if quarantined != floored {
		t.Errorf("quarantined estimate %v != floored estimate %v", quarantined, floored)
	}
}

// TestManagerCandidatesCarryHealth: a Manager wired with a health set
// surfaces member scores to the planner and the status document.
func TestManagerCandidatesCarryHealth(t *testing.T) {
	hs := health.NewSet(health.Config{})
	mgr, err := NewManager(Config{Model: testGPT(), Health: hs})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := newPoolBackend(nil), newPoolBackend(nil)
	defer pa.stop()
	defer pb.stop()
	if err := mgr.Join("a", pa.ep, device.A100, testLink); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Join("b", pb.ep, device.A100, testLink); err != nil {
		t.Fatal(err)
	}

	// Brown out "a": fast baseline on b, 50× samples on a.
	for i := 0; i < 10; i++ {
		hs.Endpoint("b").Observe(time.Millisecond, false)
	}
	for i := 0; i < 100 && hs.Endpoint("a").State() != health.Quarantined; i++ {
		hs.Endpoint("a").Observe(50*time.Millisecond, false)
	}
	if hs.Endpoint("a").State() != health.Quarantined {
		t.Fatal("could not quarantine member a")
	}

	var sawSick, sawOK bool
	for _, c := range mgr.candidates("") {
		switch c.Name {
		case "a":
			sawSick = true
			if !c.Quarantined {
				t.Error("candidate a not marked quarantined")
			}
		case "b":
			sawOK = true
			if c.Quarantined || c.HealthScore <= 0 {
				t.Errorf("candidate b = %+v, want healthy with a positive score", c)
			}
		}
	}
	if !sawSick || !sawOK {
		t.Fatal("candidates missing a member")
	}
	for _, ms := range mgr.Status().Members {
		if ms.Name == "a" && ms.Health != "quarantined" {
			t.Errorf("status for a = %+v, want quarantined", ms)
		}
		if ms.Name == "b" && ms.Health != "healthy" {
			t.Errorf("status for b = %+v, want healthy", ms)
		}
	}
}
