package scheduler

import (
	"time"

	"genie/internal/cluster"
	"genie/internal/srg"
)

// RPCProfile models the software overhead of the transport stack. The
// paper's evaluation uses PyTorch's TensorPipe RPC; its §3.4 design point
// is a DPDK/RDMA zero-copy path. Both are expressible here, and bench A7
// sweeps between them.
type RPCProfile struct {
	Name string
	// SetupTime is paid once per session (remote module installation,
	// connection establishment). Dominant for the Python stack in §4.
	SetupTime time.Duration
	// PerCall is fixed software overhead per synchronous RPC.
	PerCall time.Duration
	// SerializeBandwidth is the endpoint copy/serialize rate in bytes/s
	// (pickling for the Python stack; line rate for true zero-copy).
	SerializeBandwidth float64
}

// TensorPipeProfile is calibrated against the paper's measured RPC-bound
// regime (§4: CPU-only client, PyTorch 2.1 TensorPipe, no RDMA).
var TensorPipeProfile = RPCProfile{
	Name:               "tensorpipe-python",
	SetupTime:          109 * time.Second,
	PerCall:            15 * time.Millisecond,
	SerializeBandwidth: 140e6,
}

// RDMAProfile is the projected zero-copy datapath of §3.4: negligible
// per-call software cost, serialization at line rate (no copies).
var RDMAProfile = RPCProfile{
	Name:               "rdma-zerocopy",
	SetupTime:          50 * time.Millisecond,
	PerCall:            5 * time.Microsecond,
	SerializeBandwidth: 12.5e9,
}

// CallTime returns the end-to-end cost of one RPC moving n payload bytes
// over the link.
func (p RPCProfile) CallTime(link cluster.Link, n int64) time.Duration {
	d := p.PerCall + link.RTT
	if n > 0 {
		if p.SerializeBandwidth > 0 {
			d += time.Duration(float64(n) / p.SerializeBandwidth * float64(time.Second))
		}
		d += time.Duration(float64(n) / link.EffectiveBandwidth() * float64(time.Second))
	}
	return d
}

// CostModel estimates end-to-end plan latency as compute + transfers +
// queueing (§3.3's "pluggable cost model").
type CostModel struct {
	RPC RPCProfile
	// QueuePenalty per outstanding request on a device (head-of-line
	// estimate).
	QueuePenalty time.Duration
}

// NewCostModel builds a model with the given transport profile.
func NewCostModel(rpc RPCProfile) *CostModel {
	return &CostModel{RPC: rpc, QueuePenalty: 2 * time.Millisecond}
}

// NodeCompute returns a node's kernel time on its assigned device.
func (m *CostModel) NodeCompute(plan *Plan, cs *cluster.State, id srg.NodeID) time.Duration {
	n := plan.Graph.Node(id)
	if n.Op == "param" || n.Op == "input" {
		return 0
	}
	acc := cs.Accelerator(plan.DeviceOf(id))
	if acc == nil {
		return 0
	}
	return acc.Spec.KernelTime(n.Cost.FLOPs, n.Cost.Bytes)
}

// PlanLatency estimates the critical-path latency of a plan: the longest
// chain of compute plus cross-device transfer times, plus queueing on the
// busiest device. Pipeline stages overlap: the pipeline's latency is the
// max stage time plus one fill.
func (m *CostModel) PlanLatency(plan *Plan, cs *cluster.State) time.Duration {
	g := plan.Graph
	// Transfers by consumer edge.
	xferIn := map[srg.NodeID]time.Duration{}
	for _, e := range plan.CrossDeviceEdges() {
		if plan.Recompute[e.From] {
			// Recomputed at the consumer: cost is the producer's compute
			// on the consumer device instead of the wire.
			n := g.Node(e.From)
			acc := cs.Accelerator(plan.DeviceOf(e.To))
			if acc != nil {
				xferIn[e.To] += acc.Spec.KernelTime(n.Cost.FLOPs, n.Cost.Bytes)
			}
			continue
		}
		acc := cs.Accelerator(plan.DeviceOf(e.To))
		if acc == nil {
			continue
		}
		bytes := int64(float64(e.Meta.Bytes()) * rateOr1(e.Rate))
		xferIn[e.To] += m.RPC.CallTime(acc.Link, bytes)
	}

	// Longest path over compute + incoming transfer.
	dist := make(map[srg.NodeID]time.Duration, g.Len())
	var maxDist time.Duration
	for _, id := range g.TopoOrder() {
		n := g.Node(id)
		var best time.Duration
		for _, in := range n.Inputs {
			if d := dist[in]; d > best {
				best = d
			}
		}
		d := best + m.NodeCompute(plan, cs, id) + xferIn[id]
		dist[id] = d
		if d > maxDist {
			maxDist = d
		}
	}

	// Pipeline overlap credit: if stages exist, steady-state latency is
	// bounded by the slowest stage; approximate total as max stage + the
	// inter-stage transfers once.
	if len(plan.PipelineStages) > 1 {
		var maxStage time.Duration
		for _, stage := range plan.PipelineStages {
			var st time.Duration
			for _, id := range stage {
				st += m.NodeCompute(plan, cs, id) + xferIn[id]
			}
			if st > maxStage {
				maxStage = st
			}
		}
		overlapped := maxStage * time.Duration(len(plan.PipelineStages))
		if overlapped < maxDist {
			maxDist = overlapped
		}
	}

	// Queueing on the busiest device.
	var maxQueue int
	seen := map[cluster.AcceleratorID]bool{}
	for _, dev := range plan.Place {
		if !seen[dev] {
			seen[dev] = true
			if q := cs.QueueDepth(dev); q > maxQueue {
				maxQueue = q
			}
		}
	}
	return maxDist + time.Duration(maxQueue)*m.QueuePenalty
}

func rateOr1(r float64) float64 {
	if r <= 0 {
		return 1
	}
	return r
}

// TransferBytes totals the wire bytes a plan implies (cross-device edges
// minus recomputed ones) — the scheduler-side estimate of the
// evaluation's "Net" column.
func (m *CostModel) TransferBytes(plan *Plan) int64 {
	var total int64
	for _, e := range plan.CrossDeviceEdges() {
		if plan.Recompute[e.From] {
			continue
		}
		total += int64(float64(e.Meta.Bytes()) * rateOr1(e.Rate))
	}
	return total
}
