package backend

import (
	"fmt"
	"strings"

	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// TenantView is a namespaced facade over a shared Server: every key the
// tenant reads or writes is transparently prefixed, so tenants cannot
// name — and therefore cannot read, overwrite, or free — each other's
// resident objects. This is the data-isolation mechanism for the
// multi-tenant remote memory of the paper's §5 "trust and verifiability"
// challenge: isolation is enforced server-side at the object namespace,
// not by client goodwill.
type TenantView struct {
	s      *Server
	prefix string
}

// Tenant returns the namespaced view for the given tenant name.
func (s *Server) Tenant(name string) (*TenantView, error) {
	if name == "" || strings.ContainsAny(name, "/\x00") {
		return nil, fmt.Errorf("backend: invalid tenant name %q", name)
	}
	return &TenantView{s: s, prefix: "tenant/" + name + "/"}, nil
}

func (v *TenantView) key(k string) string { return v.prefix + k }

// Upload stores a tensor in the tenant's namespace.
func (v *TenantView) Upload(key string, t *tensor.Tensor) (*transport.UploadOK, error) {
	return v.s.Upload(v.key(key), t)
}

// Fetch reads a tenant object.
func (v *TenantView) Fetch(key string, epoch uint32) (*tensor.Tensor, error) {
	return v.s.Lookup(v.key(key), epoch)
}

// Free drops a tenant object.
func (v *TenantView) Free(key string) error {
	v.s.Free(v.key(key))
	return nil
}

// Stats reports the shared server's counters (aggregate; per-tenant
// accounting would live here in a production system).
func (v *TenantView) Stats() (*transport.Stats, error) { return v.s.Stats(), nil }

// Exec runs a subgraph with every remote reference rewritten into the
// tenant's namespace: explicit bind keys and keep keys are prefixed, and
// param leaves with no explicit binding — which would otherwise fall back
// to the server's global store — are rebound to the tenant's copies.
func (v *TenantView) Exec(x *transport.Exec) (*transport.ExecOK, error) {
	rewritten := &transport.Exec{Graph: x.Graph, Want: x.Want}
	bound := map[string]bool{}
	for _, b := range x.Binds {
		nb := b
		if nb.Inline == nil {
			nb.Key = v.key(nb.Key)
		}
		bound[nb.Ref] = true
		rewritten.Binds = append(rewritten.Binds, nb)
	}
	// Close the fallback hole: unbound leaves resolve inside the
	// namespace, never the global store.
	for _, n := range x.Graph.Nodes() {
		if (n.Op == "param" || n.Op == "input") && !bound[n.Ref] {
			rewritten.Binds = append(rewritten.Binds,
				transport.Binding{Ref: n.Ref, Key: v.key(n.Ref)})
		}
	}
	if len(x.Keep) > 0 {
		rewritten.Keep = make(map[srg.NodeID]string, len(x.Keep))
		for id, key := range x.Keep {
			rewritten.Keep[id] = v.key(key)
		}
	}
	ok, err := v.s.Exec(rewritten)
	if err != nil {
		return nil, err
	}
	// Strip the prefix from the kept-key echo so the tenant sees its own
	// namespace.
	if len(ok.Kept) > 0 {
		stripped := make(map[string]int64, len(ok.Kept))
		for k, n := range ok.Kept {
			stripped[strings.TrimPrefix(k, v.prefix)] = n
		}
		ok.Kept = stripped
	}
	return ok, nil
}
