// Package lazy implements deferred execution — the frontend mechanism the
// paper builds on PyTorch's __torch_dispatch__ (§3.2 "Automated Graph
// Construction"). Operations on lazy Values do not compute; they append
// annotated nodes to an SRG under construction. Materialization is the
// scheduler/runtime's job.
//
// The Builder also implements the structural-annotation tier: module
// scopes (the nn.Module hierarchy analogue) stamp every captured op with
// its owning module path, and an explicit phase scope supports the
// genie.AnnotatePhase developer hook.
package lazy

import (
	"fmt"
	"strconv"
	"strings"

	"genie/internal/srg"
	"genie/internal/tensor"
)

// Value is a lazy tensor proxy: a handle to an SRG node plus the inferred
// output descriptor. All arithmetic on Values defers into the graph.
type Value struct {
	b    *Builder
	id   srg.NodeID
	meta tensor.Meta
}

// ID returns the underlying SRG node.
func (v Value) ID() srg.NodeID { return v.id }

// Meta returns the inferred output descriptor.
func (v Value) Meta() tensor.Meta { return v.meta }

// Shape returns the inferred output shape.
func (v Value) Shape() tensor.Shape { return v.meta.Shape }

// Valid reports whether the value is bound to a graph node.
func (v Value) Valid() bool { return v.b != nil }

// Builder captures a computation into an SRG. It owns the concrete
// parameter and input tensors so the runtime can bind leaf nodes to data
// at execution time.
type Builder struct {
	g           *srg.Graph
	moduleStack []string
	phaseStack  []srg.Phase
	modality    srg.Modality

	params map[string]*tensor.Tensor
	inputs map[string]*tensor.Tensor
	// residency overrides for named inputs (e.g. a KV cache input is
	// stateful, not per-call external).
	inputResidency map[string]srg.Residency
	outputs        []srg.NodeID
}

// NewBuilder starts a capture for a graph with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		g:              srg.New(name),
		params:         make(map[string]*tensor.Tensor),
		inputs:         make(map[string]*tensor.Tensor),
		inputResidency: make(map[string]srg.Residency),
	}
}

// Graph returns the SRG under construction.
func (b *Builder) Graph() *srg.Graph { return b.g }

// ParamData returns the concrete tensor registered for a parameter ref.
func (b *Builder) ParamData(ref string) (*tensor.Tensor, bool) {
	t, ok := b.params[ref]
	return t, ok
}

// InputData returns the concrete tensor bound to an input ref.
func (b *Builder) InputData(ref string) (*tensor.Tensor, bool) {
	t, ok := b.inputs[ref]
	return t, ok
}

// BindInput rebinds the concrete tensor for an input ref (used when
// replaying a captured graph against new data, e.g. the next decode
// token).
func (b *Builder) BindInput(ref string, t *tensor.Tensor) {
	b.inputs[ref] = t
}

// PushModule enters a module scope; captured ops are stamped with the
// joined path. This is the FX-pass structural annotation applied online.
func (b *Builder) PushModule(name string) { b.moduleStack = append(b.moduleStack, name) }

// PopModule leaves the innermost module scope.
func (b *Builder) PopModule() {
	if len(b.moduleStack) > 0 {
		b.moduleStack = b.moduleStack[:len(b.moduleStack)-1]
	}
}

// InModule runs fn inside a module scope.
func (b *Builder) InModule(name string, fn func()) {
	b.PushModule(name)
	defer b.PopModule()
	fn()
}

// ModulePath returns the current dotted module path.
func (b *Builder) ModulePath() string { return strings.Join(b.moduleStack, ".") }

// PushPhase enters an explicit phase scope — the developer hook
// genie.AnnotatePhase from §3.2 ("Semi-Automated Semantic Annotation").
func (b *Builder) PushPhase(p srg.Phase) { b.phaseStack = append(b.phaseStack, p) }

// PopPhase leaves the innermost phase scope.
func (b *Builder) PopPhase() {
	if len(b.phaseStack) > 0 {
		b.phaseStack = b.phaseStack[:len(b.phaseStack)-1]
	}
}

// InPhase runs fn inside a phase scope.
func (b *Builder) InPhase(p srg.Phase, fn func()) {
	b.PushPhase(p)
	defer b.PopPhase()
	fn()
}

// SetModality sets the modality stamped on subsequently captured nodes.
func (b *Builder) SetModality(m srg.Modality) { b.modality = m }

func (b *Builder) currentPhase() srg.Phase {
	if len(b.phaseStack) == 0 {
		return srg.PhaseUnknown
	}
	return b.phaseStack[len(b.phaseStack)-1]
}

// MarkOutput declares v as a graph result the application will read back.
func (b *Builder) MarkOutput(v Value) {
	n := b.g.Node(v.id)
	if n != nil && (n.Residency == srg.ResidencyUnknown || n.Residency == srg.ResidencyEphemeralActivation) {
		n.Residency = srg.ResidencyExternalOutput
	}
	b.outputs = append(b.outputs, v.id)
}

// Outputs returns the declared result nodes.
func (b *Builder) Outputs() []srg.NodeID { return b.outputs }

func toSRGMeta(m tensor.Meta) srg.TensorMeta {
	return srg.TensorMeta{DType: uint8(m.DType), Shape: append([]int(nil), m.Shape...)}
}

func (b *Builder) add(n *srg.Node, meta tensor.Meta) Value {
	n.Module = b.ModulePath()
	if n.Phase == srg.PhaseUnknown {
		n.Phase = b.currentPhase()
	}
	if n.Modality == srg.ModalityUnknown {
		n.Modality = b.modality
	}
	n.Output = toSRGMeta(meta)
	id := b.g.MustAdd(n)
	return Value{b: b, id: id, meta: meta}
}

// Param registers a model parameter (persistent weight) and returns its
// lazy leaf. The ref is prefixed with the module path, giving the
// hierarchical names the structural pass groups by.
func (b *Builder) Param(name string, t *tensor.Tensor) Value {
	ref := name
	if p := b.ModulePath(); p != "" {
		ref = p + "." + name
	}
	if _, dup := b.params[ref]; dup {
		panic(fmt.Sprintf("lazy: duplicate param %q", ref))
	}
	b.params[ref] = t
	meta := tensor.MetaOf(t)
	return b.add(&srg.Node{
		Op: "param", Ref: ref,
		Residency: srg.ResidencyPersistentWeight,
		Cost:      srg.CostHints{Bytes: int64(meta.Bytes())},
	}, meta)
}

// Input registers an external per-call input.
func (b *Builder) Input(name string, t *tensor.Tensor) Value {
	return b.inputWithResidency(name, t, srg.ResidencyExternalInput)
}

// StatefulInput registers an input whose data persists and grows across
// calls (a KV cache): residency stateful_kv_cache instead of
// external_input. The frontend's pattern recognizer also infers this for
// un-annotated graphs; this is the explicit path.
func (b *Builder) StatefulInput(name string, t *tensor.Tensor) Value {
	return b.inputWithResidency(name, t, srg.ResidencyStatefulKVCache)
}

func (b *Builder) inputWithResidency(name string, t *tensor.Tensor, r srg.Residency) Value {
	ref := name
	if p := b.ModulePath(); p != "" {
		ref = p + "." + name
	}
	if _, dup := b.inputs[ref]; dup {
		panic(fmt.Sprintf("lazy: duplicate input %q", ref))
	}
	b.inputs[ref] = t
	b.inputResidency[ref] = r
	meta := tensor.MetaOf(t)
	return b.add(&srg.Node{
		Op: "input", Ref: ref,
		Residency: r,
		Cost:      srg.CostHints{Bytes: int64(meta.Bytes())},
	}, meta)
}

func (b *Builder) check(vs ...Value) {
	for _, v := range vs {
		if v.b != b {
			panic("lazy: value from a different builder")
		}
	}
}

// MatMul captures a @ b.
func (b *Builder) MatMul(x, y Value) Value {
	b.check(x, y)
	xs, ys := x.meta.Shape, y.meta.Shape
	if ys.Rank() != 2 || (xs.Rank() != 2 && xs.Rank() != 3) || xs[xs.Rank()-1] != ys[0] {
		panic(fmt.Sprintf("lazy: matmul %v @ %v", xs, ys))
	}
	outShape := xs.Clone()
	outShape[len(outShape)-1] = ys[1]
	m := int64(xs.NumElements() / xs[xs.Rank()-1])
	k, n := int64(ys[0]), int64(ys[1])
	flops := float64(2 * m * k * n)
	bytes := int64(x.meta.Bytes() + y.meta.Bytes() + int(m*n)*4)
	return b.add(&srg.Node{
		Op: "matmul", Inputs: []srg.NodeID{x.id, y.id},
		Residency: srg.ResidencyEphemeralActivation,
		Cost:      srg.CostHints{FLOPs: flops, Bytes: bytes},
	}, tensor.Meta{DType: tensor.F32, Shape: outShape})
}

// MatMulT captures a @ bᵀ (attention scores).
func (b *Builder) MatMulT(x, y Value) Value {
	b.check(x, y)
	xs, ys := x.meta.Shape, y.meta.Shape
	if xs.Rank() != 2 || ys.Rank() != 2 || xs[1] != ys[1] {
		panic(fmt.Sprintf("lazy: matmulT %v @ %vᵀ", xs, ys))
	}
	flops := float64(2 * xs[0] * xs[1] * ys[0])
	bytes := int64(x.meta.Bytes() + y.meta.Bytes() + xs[0]*ys[0]*4)
	return b.add(&srg.Node{
		Op: "matmul_t", Inputs: []srg.NodeID{x.id, y.id},
		Residency: srg.ResidencyEphemeralActivation,
		Cost:      srg.CostHints{FLOPs: flops, Bytes: bytes},
	}, tensor.Meta{DType: tensor.F32, Shape: tensor.Shape{xs[0], ys[0]}})
}

func (b *Builder) ewise(op string, x, y Value) Value {
	b.check(x, y)
	outShape, err := tensor.BroadcastShapes(x.meta.Shape, y.meta.Shape)
	if err != nil {
		panic(fmt.Sprintf("lazy: %s: %v", op, err))
	}
	n := int64(outShape.NumElements())
	return b.add(&srg.Node{
		Op: op, Inputs: []srg.NodeID{x.id, y.id},
		Residency: srg.ResidencyEphemeralActivation,
		Cost:      srg.CostHints{FLOPs: float64(n), Bytes: 3 * n * 4},
	}, tensor.Meta{DType: tensor.F32, Shape: outShape})
}

// Add captures x + y (broadcasting).
func (b *Builder) Add(x, y Value) Value { return b.ewise("add", x, y) }

// Sub captures x - y.
func (b *Builder) Sub(x, y Value) Value { return b.ewise("sub", x, y) }

// Mul captures x * y elementwise.
func (b *Builder) Mul(x, y Value) Value { return b.ewise("mul", x, y) }

func (b *Builder) unary(op string, x Value, flopsPerElem float64) Value {
	b.check(x)
	n := int64(x.meta.NumElements())
	return b.add(&srg.Node{
		Op: op, Inputs: []srg.NodeID{x.id},
		Residency: srg.ResidencyEphemeralActivation,
		Cost:      srg.CostHints{FLOPs: flopsPerElem * float64(n), Bytes: 2 * n * 4},
	}, x.meta)
}

// Scale captures x * s for scalar s.
func (b *Builder) Scale(x Value, s float32) Value {
	v := b.unary("scale", x, 1)
	b.g.Node(v.id).Attrs = map[string]string{"s": strconv.FormatFloat(float64(s), 'g', -1, 32)}
	return v
}

// Softmax captures a last-dim softmax.
func (b *Builder) Softmax(x Value) Value { return b.unary("softmax", x, 5) }

// GELU captures the activation.
func (b *Builder) GELU(x Value) Value { return b.unary("gelu", x, 10) }

// ReLU captures the activation.
func (b *Builder) ReLU(x Value) Value { return b.unary("relu", x, 1) }

// LayerNorm captures normalization with learned gain/bias.
func (b *Builder) LayerNorm(x, gamma, beta Value, eps float32) Value {
	b.check(x, gamma, beta)
	inner := x.meta.Shape[x.meta.Shape.Rank()-1]
	if gamma.meta.NumElements() != inner || beta.meta.NumElements() != inner {
		panic(fmt.Sprintf("lazy: layernorm gain/bias %d/%d for inner %d",
			gamma.meta.NumElements(), beta.meta.NumElements(), inner))
	}
	n := int64(x.meta.NumElements())
	v := b.add(&srg.Node{
		Op: "layernorm", Inputs: []srg.NodeID{x.id, gamma.id, beta.id},
		Attrs:     map[string]string{"eps": strconv.FormatFloat(float64(eps), 'g', -1, 32)},
		Residency: srg.ResidencyEphemeralActivation,
		Cost:      srg.CostHints{FLOPs: 8 * float64(n), Bytes: 2 * n * 4},
	}, x.meta)
	return v
}

// Embedding captures a row gather.
func (b *Builder) Embedding(table, ids Value) Value {
	b.check(table, ids)
	ts := table.meta.Shape
	if ts.Rank() != 2 {
		panic(fmt.Sprintf("lazy: embedding table %v", ts))
	}
	n := ids.meta.NumElements()
	outShape := tensor.Shape{n, ts[1]}
	bytes := int64(n * ts[1] * 4)
	return b.add(&srg.Node{
		Op: "embedding", Inputs: []srg.NodeID{table.id, ids.id},
		Residency: srg.ResidencyEphemeralActivation,
		Modality:  srg.ModalitySparse,
		Cost:      srg.CostHints{FLOPs: float64(n), Bytes: 2 * bytes},
	}, tensor.Meta{DType: tensor.F32, Shape: outShape})
}

// EmbeddingBag captures a gather-sum over bags; offsets are static
// attributes (they are part of the request structure, not tensor data).
func (b *Builder) EmbeddingBag(table, ids Value, offsets []int) Value {
	b.check(table, ids)
	ts := table.meta.Shape
	if ts.Rank() != 2 || len(offsets) == 0 {
		panic(fmt.Sprintf("lazy: embedding_bag table %v offsets %v", ts, offsets))
	}
	parts := make([]string, len(offsets))
	for i, o := range offsets {
		parts[i] = strconv.Itoa(o)
	}
	nIDs := ids.meta.NumElements()
	return b.add(&srg.Node{
		Op: "embedding_bag", Inputs: []srg.NodeID{table.id, ids.id},
		Attrs:     map[string]string{"offsets": strings.Join(parts, ",")},
		Residency: srg.ResidencyEphemeralActivation,
		Modality:  srg.ModalitySparse,
		Cost: srg.CostHints{FLOPs: float64(nIDs * ts[1]),
			Bytes: int64((nIDs + len(offsets)) * ts[1] * 4)},
	}, tensor.Meta{DType: tensor.F32, Shape: tensor.Shape{len(offsets), ts[1]}})
}

// Concat captures concatenation along dim. When the first operand is a
// stateful cache leaf this is the KV-append idiom the pattern recognizer
// keys on.
func (b *Builder) Concat(dim int, vs ...Value) Value {
	if len(vs) == 0 {
		panic("lazy: concat of nothing")
	}
	b.check(vs...)
	base := vs[0].meta.Shape.Clone()
	total := 0
	var bytes int64
	ids := make([]srg.NodeID, len(vs))
	for i, v := range vs {
		s := v.meta.Shape
		if s.Rank() != base.Rank() {
			panic(fmt.Sprintf("lazy: concat rank mismatch %v vs %v", s, base))
		}
		for d := range s {
			if d != dim && s[d] != base[d] {
				panic(fmt.Sprintf("lazy: concat shape mismatch %v vs %v", s, base))
			}
		}
		total += s[dim]
		bytes += int64(v.meta.Bytes())
		ids[i] = v.id
	}
	base[dim] = total
	return b.add(&srg.Node{
		Op: "concat", Inputs: ids,
		Attrs:     map[string]string{"dim": strconv.Itoa(dim)},
		Residency: srg.ResidencyEphemeralActivation,
		Cost:      srg.CostHints{Bytes: 2 * bytes},
	}, tensor.Meta{DType: vs[0].meta.DType, Shape: base})
}

// SliceRows captures rows [start,end) along dim 0.
func (b *Builder) SliceRows(x Value, start, end int) Value {
	b.check(x)
	s := x.meta.Shape
	if start < 0 || end > s[0] || start >= end {
		panic(fmt.Sprintf("lazy: slice [%d:%d) of %v", start, end, s))
	}
	outShape := s.Clone()
	outShape[0] = end - start
	return b.add(&srg.Node{
		Op: "slice_rows", Inputs: []srg.NodeID{x.id},
		Attrs:     map[string]string{"start": strconv.Itoa(start), "end": strconv.Itoa(end)},
		Residency: srg.ResidencyEphemeralActivation,
		Cost:      srg.CostHints{Bytes: 2 * int64(outShape.NumElements()) * 4},
	}, tensor.Meta{DType: x.meta.DType, Shape: outShape})
}

// Transpose2D captures xᵀ.
func (b *Builder) Transpose2D(x Value) Value {
	b.check(x)
	s := x.meta.Shape
	if s.Rank() != 2 {
		panic(fmt.Sprintf("lazy: transpose2d of %v", s))
	}
	return b.add(&srg.Node{
		Op: "transpose2d", Inputs: []srg.NodeID{x.id},
		Residency: srg.ResidencyEphemeralActivation,
		Cost:      srg.CostHints{Bytes: 2 * int64(x.meta.Bytes())},
	}, tensor.Meta{DType: x.meta.DType, Shape: tensor.Shape{s[1], s[0]}})
}

// Reshape captures a metadata-only shape change.
func (b *Builder) Reshape(x Value, shape ...int) Value {
	b.check(x)
	s := tensor.Shape(shape)
	if s.NumElements() != x.meta.NumElements() {
		panic(fmt.Sprintf("lazy: reshape %v to %v", x.meta.Shape, s))
	}
	parts := make([]string, len(shape))
	for i, d := range shape {
		parts[i] = strconv.Itoa(d)
	}
	return b.add(&srg.Node{
		Op: "reshape", Inputs: []srg.NodeID{x.id},
		Attrs:     map[string]string{"shape": strings.Join(parts, ",")},
		Residency: srg.ResidencyEphemeralActivation,
	}, tensor.Meta{DType: x.meta.DType, Shape: s.Clone()})
}

// ArgmaxLast captures greedy token selection over the final row.
func (b *Builder) ArgmaxLast(x Value) Value {
	b.check(x)
	s := x.meta.Shape
	if s.Rank() != 2 {
		panic(fmt.Sprintf("lazy: argmax_last of %v", s))
	}
	return b.add(&srg.Node{
		Op: "argmax_last", Inputs: []srg.NodeID{x.id},
		Residency: srg.ResidencyExternalOutput,
		Cost:      srg.CostHints{FLOPs: float64(s[1]), Bytes: int64(s[1]) * 4},
	}, tensor.Meta{DType: tensor.I64, Shape: tensor.Shape{1}})
}

// Conv2D captures a convolution.
func (b *Builder) Conv2D(x, kernel Value, stride, pad int) Value {
	b.check(x, kernel)
	is, ks := x.meta.Shape, kernel.meta.Shape
	if is.Rank() != 3 || ks.Rank() != 4 || is[0] != ks[1] {
		panic(fmt.Sprintf("lazy: conv2d %v * %v", is, ks))
	}
	oh := (is[1]+2*pad-ks[2])/stride + 1
	ow := (is[2]+2*pad-ks[3])/stride + 1
	if oh <= 0 || ow <= 0 {
		panic("lazy: conv2d empty output")
	}
	flops := float64(2 * ks[0] * ks[1] * ks[2] * ks[3] * oh * ow)
	return b.add(&srg.Node{
		Op: "conv2d", Inputs: []srg.NodeID{x.id, kernel.id},
		Attrs: map[string]string{
			"stride": strconv.Itoa(stride), "pad": strconv.Itoa(pad)},
		Residency: srg.ResidencyEphemeralActivation,
		Modality:  srg.ModalityVision,
		Cost: srg.CostHints{FLOPs: flops,
			Bytes: int64(x.meta.Bytes() + kernel.meta.Bytes() + ks[0]*oh*ow*4)},
	}, tensor.Meta{DType: tensor.F32, Shape: tensor.Shape{ks[0], oh, ow}})
}

// MaxPool2D captures k×k pooling.
func (b *Builder) MaxPool2D(x Value, k int) Value {
	b.check(x)
	s := x.meta.Shape
	if s.Rank() != 3 || s[1]/k == 0 || s[2]/k == 0 {
		panic(fmt.Sprintf("lazy: maxpool %d of %v", k, s))
	}
	out := tensor.Shape{s[0], s[1] / k, s[2] / k}
	return b.add(&srg.Node{
		Op: "maxpool2d", Inputs: []srg.NodeID{x.id},
		Attrs:     map[string]string{"k": strconv.Itoa(k)},
		Residency: srg.ResidencyEphemeralActivation,
		Modality:  srg.ModalityVision,
		Cost:      srg.CostHints{FLOPs: float64(x.meta.NumElements()), Bytes: int64(x.meta.Bytes())},
	}, tensor.Meta{DType: tensor.F32, Shape: out})
}

// MeanPoolAll captures global average pooling [c,h,w] -> [c].
func (b *Builder) MeanPoolAll(x Value) Value {
	b.check(x)
	s := x.meta.Shape
	if s.Rank() != 3 {
		panic(fmt.Sprintf("lazy: meanpool of %v", s))
	}
	return b.add(&srg.Node{
		Op: "meanpool", Inputs: []srg.NodeID{x.id},
		Residency: srg.ResidencyEphemeralActivation,
		Modality:  srg.ModalityVision,
		Cost:      srg.CostHints{FLOPs: float64(x.meta.NumElements()), Bytes: int64(x.meta.Bytes())},
	}, tensor.Meta{DType: tensor.F32, Shape: tensor.Shape{s[0]}})
}

// CausalMask captures autoregressive masking of attention scores; offset
// is the number of cached positions preceding the queries.
func (b *Builder) CausalMask(x Value, offset int) Value {
	b.check(x)
	if x.meta.Shape.Rank() != 2 {
		panic(fmt.Sprintf("lazy: causal_mask of %v", x.meta.Shape))
	}
	v := b.unary("causal_mask", x, 0)
	b.g.Node(v.id).Attrs = map[string]string{"offset": strconv.Itoa(offset)}
	return v
}

// AnnotateStateful marks a captured value as a stateful data product that
// must be materialized remotely under the given stable key — the explicit
// handle-naming hook models use for cache products the pattern
// recognizers cannot name on their own (e.g. the fresh K/V rows a prefill
// produces).
func (b *Builder) AnnotateStateful(v Value, key string) {
	b.check(v)
	b.AnnotateStatefulNode(v.id, key)
}

// AnnotateStatefulNode is AnnotateStateful addressed by node ID (for
// callers that re-derived the node from the graph).
func (b *Builder) AnnotateStatefulNode(id srg.NodeID, key string) {
	n := b.g.Node(id)
	if n == nil {
		panic(fmt.Sprintf("lazy: no node %d", id))
	}
	n.Residency = srg.ResidencyStatefulKVCache
	if n.Attrs == nil {
		n.Attrs = map[string]string{}
	}
	n.Attrs["state_key"] = key
}

// RoPE captures rotary position embedding of x [t, dim] for rows at
// absolute positions startPos… (base 10000 when base <= 0).
func (b *Builder) RoPE(x Value, startPos int, base float64) Value {
	b.check(x)
	s := x.meta.Shape
	if s.Rank() != 2 || s[1]%2 != 0 {
		panic(fmt.Sprintf("lazy: rope of %v", s))
	}
	v := b.unary("rope", x, 6)
	b.g.Node(v.id).Attrs = map[string]string{
		"start": strconv.Itoa(startPos),
		"base":  strconv.FormatFloat(base, 'g', -1, 64),
	}
	return v
}
