module genie

go 1.22
