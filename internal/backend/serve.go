package backend

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"genie/internal/transport"
)

// Serve answers the Genie wire protocol on one framed connection until
// the peer disconnects. It is safe to run one Serve per connection
// concurrently against the same Server.
func (s *Server) Serve(conn *transport.Conn) error {
	for {
		t, payload, err := conn.Recv()
		if err != nil {
			if transport.IsClosed(err) {
				return nil
			}
			return err
		}
		rt, rp := s.handle(t, payload)
		if err := conn.Send(rt, rp); err != nil {
			if transport.IsClosed(err) {
				return nil
			}
			return err
		}
	}
}

func (s *Server) handle(t transport.MsgType, payload []byte) (transport.MsgType, []byte) {
	fail := func(err error) (transport.MsgType, []byte) {
		return transport.MsgErr, transport.EncodeErr(err)
	}
	switch t {
	case transport.MsgPing:
		return transport.MsgPong, nil
	case transport.MsgUpload:
		u, err := transport.DecodeUpload(payload)
		if err != nil {
			return fail(err)
		}
		ack, err := s.Upload(u.Key, u.Data)
		if err != nil {
			return fail(err)
		}
		return transport.MsgUploadOK, transport.EncodeUploadOK(ack)
	case transport.MsgExec:
		x, err := transport.DecodeExec(payload)
		if err != nil {
			return fail(err)
		}
		ok, err := s.Exec(x)
		if err != nil {
			return fail(err)
		}
		return transport.MsgExecOK, transport.EncodeExecOK(ok)
	case transport.MsgFetch:
		f, err := transport.DecodeFetch(payload)
		if err != nil {
			return fail(err)
		}
		data, err := s.Lookup(f.Key, f.Epoch)
		if err != nil {
			return fail(err)
		}
		return transport.MsgTensor, transport.EncodeTensorMsg(data)
	case transport.MsgFree:
		f, err := transport.DecodeFetch(payload)
		if err != nil {
			return fail(err)
		}
		s.Free(f.Key)
		return transport.MsgFreeOK, nil
	case transport.MsgCrash:
		s.Crash()
		return transport.MsgCrashOK, nil
	case transport.MsgStats:
		return transport.MsgStatsOK, transport.EncodeStats(s.Stats())
	}
	return fail(fmt.Errorf("backend: unknown message type %d", t))
}

// Listen serves the protocol on a TCP listener until the listener closes.
// Each connection gets its own goroutine.
func (s *Server) Listen(l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		raw, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if tc, ok := raw.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn := transport.NewConn(raw, nil, nil)
			defer conn.Close()
			if err := s.Serve(conn); err != nil {
				log.Printf("backend: connection error: %v", err)
			}
		}()
	}
}
